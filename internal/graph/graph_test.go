package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tinyDataset() *Dataset {
	return &Dataset{
		Name:     "tiny",
		NumNodes: 4,
		Events: []Event{
			{Src: 0, Dst: 1, Time: 1, FeatIdx: 0},
			{Src: 1, Dst: 2, Time: 2, FeatIdx: 1},
			{Src: 2, Dst: 3, Time: 3, FeatIdx: 0},
			{Src: 0, Dst: 3, Time: 4, FeatIdx: 1},
		},
		EdgeFeatDim: 2,
		EdgeFeats:   []float32{1, 2, 3, 4},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestValidateRejectsUnsorted(t *testing.T) {
	d := tinyDataset()
	d.Events[2].Time = 0.5
	if err := d.Validate(); !errors.Is(err, ErrUnsortedTimestamps) {
		t.Fatalf("err = %v, want ErrUnsortedTimestamps", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	d := tinyDataset()
	d.Events[1].Dst = 9
	if err := d.Validate(); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("err = %v, want ErrNodeOutOfRange", err)
	}
	d = tinyDataset()
	d.Events[0].Src = -1
	if err := d.Validate(); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("err = %v, want ErrNodeOutOfRange", err)
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	d := tinyDataset()
	d.Events[0].Dst = 0
	if err := d.Validate(); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestValidateRejectsBadFeature(t *testing.T) {
	d := tinyDataset()
	d.Events[3].FeatIdx = 7
	if err := d.Validate(); !errors.Is(err, ErrBadFeatIndex) {
		t.Fatalf("err = %v, want ErrBadFeatIndex", err)
	}
}

func TestValidateEventsStreamInvariants(t *testing.T) {
	good := []Event{{Src: 0, Dst: 1, Time: 5, FeatIdx: -1}, {Src: 1, Dst: 2, Time: 6, FeatIdx: -1}}
	if err := ValidateEvents(good, 4, 4); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	cases := []struct {
		events []Event
		after  float64
		want   error
	}{
		{[]Event{{Src: 0, Dst: 1, Time: nan()}}, 0, ErrNonFiniteTime},
		{[]Event{{Src: 0, Dst: 1, Time: inf()}}, 0, ErrNonFiniteTime},
		{[]Event{{Src: 0, Dst: 1, Time: 3}}, 4, ErrUnsortedTimestamps}, // behind the stream head
		{[]Event{{Src: 0, Dst: 1, Time: 5}, {Src: 1, Dst: 2, Time: 4}}, 0, ErrUnsortedTimestamps},
		{[]Event{{Src: 0, Dst: 9, Time: 5}}, 0, ErrNodeOutOfRange},
		{[]Event{{Src: -1, Dst: 1, Time: 5}}, 0, ErrNodeOutOfRange},
		{[]Event{{Src: 2, Dst: 2, Time: 5}}, 0, ErrSelfLoop},
	}
	for i, tc := range cases {
		if err := ValidateEvents(tc.events, 4, tc.after); !errors.Is(err, tc.want) {
			t.Fatalf("case %d: err = %v, want %v", i, err, tc.want)
		}
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }

func TestEdgeFeatureLookup(t *testing.T) {
	d := tinyDataset()
	f := d.EdgeFeature(d.Events[1])
	if len(f) != 2 || f[0] != 3 || f[1] != 4 {
		t.Fatalf("feature = %v", f)
	}
	noFeat := &Dataset{NumNodes: 2, Events: []Event{{Src: 0, Dst: 1, Time: 1, FeatIdx: -1}}}
	if f := noFeat.EdgeFeature(noFeat.Events[0]); f != nil {
		t.Fatalf("featureless dataset returned %v", f)
	}
}

func TestSplitChronological(t *testing.T) {
	d := tinyDataset()
	train, val := d.Split(0.5)
	if train.NumEvents() != 2 || val.NumEvents() != 2 {
		t.Fatalf("split sizes %d/%d", train.NumEvents(), val.NumEvents())
	}
	if train.Events[1].Time > val.Events[0].Time {
		t.Fatal("split not chronological")
	}
	// Degenerate fractions clamp.
	tr, v := d.Split(-1)
	if tr.NumEvents() != 0 || v.NumEvents() != 4 {
		t.Fatal("negative fraction not clamped")
	}
	tr, v = d.Split(2)
	if tr.NumEvents() != 4 || v.NumEvents() != 0 {
		t.Fatal("fraction > 1 not clamped")
	}
}

func TestComputeStats(t *testing.T) {
	d := tinyDataset()
	s := d.ComputeStats()
	if s.NumEvents != 4 || s.NumNodes != 4 {
		t.Fatalf("stats %+v", s)
	}
	// degrees: n0=2 n1=2 n2=2 n3=2 → avg 2, max 2
	if s.AvgDegree != 2 || s.MaxDegree != 2 {
		t.Fatalf("degree stats %+v", s)
	}
	if s.TimeSpan != 3 {
		t.Fatalf("timespan %v", s.TimeSpan)
	}
	empty := &Dataset{Name: "e", NumNodes: 3}
	if s := empty.ComputeStats(); s.NumEvents != 0 || s.AvgDegree != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestDegreeInBatchesCountsEveryEndpoint(t *testing.T) {
	d := tinyDataset()
	total := 0
	d.DegreeInBatches(2, func(node int32, count int) { total += count })
	if total != 8 { // 4 events × 2 endpoints
		t.Fatalf("total endpoint count %d, want 8", total)
	}
}

func TestAdjacencyStoreMostRecent(t *testing.T) {
	a := NewAdjacencyStore(5, 3)
	a.AddEvent(Event{Src: 0, Dst: 1, Time: 1})
	a.AddEvent(Event{Src: 0, Dst: 2, Time: 2})
	a.AddEvent(Event{Src: 0, Dst: 3, Time: 3})
	a.AddEvent(Event{Src: 0, Dst: 4, Time: 4}) // evicts (0,1)
	out := make([]NeighborRecord, 3)
	n := a.SampleMostRecent(0, 3, out)
	if n != 3 {
		t.Fatalf("sampled %d", n)
	}
	if out[0].Neighbor != 4 || out[1].Neighbor != 3 || out[2].Neighbor != 2 {
		t.Fatalf("most-recent order wrong: %+v", out)
	}
	if a.Degree(0) != 3 || a.Degree(1) != 1 || a.Degree(4) != 1 {
		t.Fatalf("degrees: %d %d %d", a.Degree(0), a.Degree(1), a.Degree(4))
	}
}

func TestAdjacencyStoreUniformWithinHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAdjacencyStore(4, 8)
	a.AddEvent(Event{Src: 0, Dst: 1, Time: 1})
	a.AddEvent(Event{Src: 0, Dst: 2, Time: 2})
	out := make([]NeighborRecord, 5)
	n := a.SampleUniform(rng, 0, 5, out)
	if n != 5 {
		t.Fatalf("uniform sampled %d, want 5 (with replacement)", n)
	}
	for _, r := range out {
		if r.Neighbor != 1 && r.Neighbor != 2 {
			t.Fatalf("sampled neighbor %d not in history", r.Neighbor)
		}
	}
	if got := a.SampleUniform(rng, 3, 2, out); got != 0 {
		t.Fatalf("isolated node sampled %d", got)
	}
}

func TestAdjacencyStoreReset(t *testing.T) {
	a := NewAdjacencyStore(3, 2)
	a.AddEvent(Event{Src: 0, Dst: 1, Time: 1})
	a.Reset()
	if a.Degree(0) != 0 || a.TotalEvents() != 0 {
		t.Fatal("reset did not clear store")
	}
	if a.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broke after reset")
	}
}

// Property: ring buffer never reports more neighbors than were added nor
// more than its capacity, and most-recent ordering is by non-increasing time.
func TestAdjacencyStoreProperties(t *testing.T) {
	f := func(seed int64, nEvents uint8, capRaw uint8) bool {
		capacity := int(capRaw)%7 + 1
		rng := rand.New(rand.NewSource(seed))
		a := NewAdjacencyStore(10, capacity)
		added := make(map[int32]int)
		t0 := 0.0
		for i := 0; i < int(nEvents); i++ {
			t0 += rng.Float64()
			src := int32(rng.Intn(10))
			dst := int32(rng.Intn(10))
			if src == dst {
				continue
			}
			a.AddEvent(Event{Src: src, Dst: dst, Time: t0})
			added[src]++
			added[dst]++
		}
		out := make([]NeighborRecord, capacity)
		for node := int32(0); node < 10; node++ {
			n := a.SampleMostRecent(node, capacity, out)
			if n > capacity || n > added[node] {
				return false
			}
			for i := 1; i < n; i++ {
				if out[i].Time > out[i-1].Time {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFullAdjacencyStoreExactness(t *testing.T) {
	a := NewFullAdjacencyStore(5)
	for i := 0; i < 12; i++ {
		a.AddEvent(Event{Src: 0, Dst: int32(1 + i%4), Time: float64(i)})
	}
	if a.Degree(0) != 12 {
		t.Fatalf("full degree %d", a.Degree(0))
	}
	// most recent is exact at any depth (the ring would have evicted).
	out := make([]NeighborRecord, 12)
	n := a.SampleMostRecent(0, 12, out)
	if n != 12 {
		t.Fatalf("sampled %d", n)
	}
	for i := 1; i < n; i++ {
		if out[i].Time >= out[i-1].Time {
			t.Fatal("not newest-first")
		}
	}
	if out[11].Time != 0 {
		t.Fatal("oldest interaction lost")
	}
	if a.TotalEvents() != 12 {
		t.Fatalf("total %d", a.TotalEvents())
	}
}

func TestFullAdjacencyUniformOverWholeHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewFullAdjacencyStore(40)
	// Node 0 interacts with 30 distinct partners; a capacity-16 ring could
	// only ever return the last 16, the full store must reach them all.
	for i := 0; i < 30; i++ {
		a.AddEvent(Event{Src: 0, Dst: int32(i + 1), Time: float64(i)})
	}
	seen := map[int32]bool{}
	out := make([]NeighborRecord, 1)
	for i := 0; i < 3000; i++ {
		a.SampleUniform(rng, 0, 1, out)
		seen[out[0].Neighbor] = true
	}
	if len(seen) < 28 {
		t.Fatalf("uniform sampling reached only %d of 30 partners", len(seen))
	}
	if got := a.SampleUniform(rng, 39, 1, out); got != 0 {
		t.Fatalf("isolated node sampled %d", got)
	}
}

func TestFullAdjacencyReset(t *testing.T) {
	a := NewFullAdjacencyStore(2)
	a.AddEvent(Event{Src: 0, Dst: 1, Time: 1})
	a.Reset()
	if a.Degree(0) != 0 || a.TotalEvents() != 0 {
		t.Fatal("reset incomplete")
	}
	if a.MemoryBytes() <= 0 {
		t.Fatal("memory accounting")
	}
}
