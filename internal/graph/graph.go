// Package graph models Continuous-Time Dynamic Graphs (CTDGs) the way the
// paper does (§2.1): a dynamic graph is a chronologically ordered sequence of
// events G = {e(t1), e(t2), …}, each event an edge (src → dst) with a
// timestamp and optional edge features.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Event is a single CTDG update: an edge from Src to Dst occurring at Time.
// FeatIdx indexes into the dataset's edge-feature table (−1 when the dataset
// carries no features).
type Event struct {
	Src, Dst int32
	Time     float64
	FeatIdx  int32
}

// Dataset is an event sequence plus its node universe and edge features.
// Events are sorted by non-decreasing timestamp; index order is the
// canonical processing order (§2.3).
type Dataset struct {
	Name     string
	NumNodes int
	Events   []Event
	// EdgeFeatDim is the width of edge feature vectors (possibly 0).
	EdgeFeatDim int
	// EdgeFeats holds one feature row per distinct feature index, packed
	// row-major; nil when EdgeFeatDim == 0.
	EdgeFeats []float32
	// Labels, when non-nil, carries one binary label per event — the
	// dynamic node-state labels of classification benchmarks like MOOC's
	// student drop-out (the label describes the event's source node at the
	// event's time). len(Labels) must equal len(Events).
	Labels []uint8
}

// Validation errors returned by Validate.
var (
	ErrUnsortedTimestamps = errors.New("graph: events not sorted by timestamp")
	ErrNodeOutOfRange     = errors.New("graph: event references node outside universe")
	ErrSelfLoop           = errors.New("graph: self-loop event")
	ErrBadFeatIndex       = errors.New("graph: event feature index out of range")
	ErrBadLabels          = errors.New("graph: label count does not match event count")
	ErrNonFiniteTime      = errors.New("graph: event timestamp is NaN or infinite")
	ErrNonFiniteFeature   = errors.New("graph: edge feature is NaN or infinite")
)

// Validate checks the dataset invariants every consumer in this repo relies
// on: timestamps non-decreasing, node ids within [0, NumNodes), no self
// loops, and feature indices within the feature table. It returns a
// descriptive error identifying the first offending event.
func (d *Dataset) Validate() error {
	if d.Labels != nil && len(d.Labels) != len(d.Events) {
		return fmt.Errorf("%w: %d labels for %d events", ErrBadLabels, len(d.Labels), len(d.Events))
	}
	nFeatRows := 0
	if d.EdgeFeatDim > 0 {
		nFeatRows = len(d.EdgeFeats) / d.EdgeFeatDim
	}
	var prev float64
	for i, e := range d.Events {
		// A NaN timestamp silently defeats the monotonicity check (every
		// comparison with NaN is false) and then poisons the time encoder,
		// so non-finite times are rejected outright.
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("%w: event %d t=%v", ErrNonFiniteTime, i, e.Time)
		}
		if e.Time < prev {
			return fmt.Errorf("%w: event %d at t=%v after t=%v", ErrUnsortedTimestamps, i, e.Time, prev)
		}
		prev = e.Time
		if e.Src < 0 || int(e.Src) >= d.NumNodes || e.Dst < 0 || int(e.Dst) >= d.NumNodes {
			return fmt.Errorf("%w: event %d (%d→%d) with %d nodes", ErrNodeOutOfRange, i, e.Src, e.Dst, d.NumNodes)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("%w: event %d on node %d", ErrSelfLoop, i, e.Src)
		}
		if d.EdgeFeatDim > 0 {
			if e.FeatIdx < 0 || int(e.FeatIdx) >= nFeatRows {
				return fmt.Errorf("%w: event %d feature %d of %d", ErrBadFeatIndex, i, e.FeatIdx, nFeatRows)
			}
		}
	}
	for i, f := range d.EdgeFeats {
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			return fmt.Errorf("%w: feature row %d column %d is %v",
				ErrNonFiniteFeature, i/max(d.EdgeFeatDim, 1), i%max(d.EdgeFeatDim, 1), f)
		}
	}
	return nil
}

// ValidateEvents applies the streaming subset of the Validate invariants to
// a standalone event slice: finite timestamps, non-decreasing from `after`
// onward, node ids within [0, numNodes), and no self loops. It is the
// admission check for live ingest paths (serve's /ingest), where events
// arrive without a surrounding Dataset but must uphold the same contract —
// the typed errors (ErrNonFiniteTime, ErrUnsortedTimestamps, …) let callers
// map violations to protocol-level rejections.
func ValidateEvents(events []Event, numNodes int, after float64) error {
	prev := after
	for i, e := range events {
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("%w: event %d t=%v", ErrNonFiniteTime, i, e.Time)
		}
		if e.Time < prev {
			return fmt.Errorf("%w: event %d at t=%v after t=%v", ErrUnsortedTimestamps, i, e.Time, prev)
		}
		prev = e.Time
		if e.Src < 0 || int(e.Src) >= numNodes || e.Dst < 0 || int(e.Dst) >= numNodes {
			return fmt.Errorf("%w: event %d (%d→%d) with %d nodes", ErrNodeOutOfRange, i, e.Src, e.Dst, numNodes)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("%w: event %d on node %d", ErrSelfLoop, i, e.Src)
		}
	}
	return nil
}

// EdgeFeature returns the feature row for event e, or nil when the dataset
// has no edge features.
func (d *Dataset) EdgeFeature(e Event) []float32 {
	if d.EdgeFeatDim == 0 || e.FeatIdx < 0 {
		return nil
	}
	off := int(e.FeatIdx) * d.EdgeFeatDim
	return d.EdgeFeats[off : off+d.EdgeFeatDim]
}

// NumEvents returns the event count.
func (d *Dataset) NumEvents() int { return len(d.Events) }

// Split partitions the dataset chronologically into train/val portions,
// with trainFrac of events in the training prefix. TGNN evaluation is
// always chronological — the model never peeks at future events.
func (d *Dataset) Split(trainFrac float64) (train, val *Dataset) {
	cut := int(float64(len(d.Events)) * trainFrac)
	if cut < 0 {
		cut = 0
	}
	if cut > len(d.Events) {
		cut = len(d.Events)
	}
	train = &Dataset{
		Name: d.Name + "/train", NumNodes: d.NumNodes,
		Events: d.Events[:cut], EdgeFeatDim: d.EdgeFeatDim, EdgeFeats: d.EdgeFeats,
	}
	val = &Dataset{
		Name: d.Name + "/val", NumNodes: d.NumNodes,
		Events: d.Events[cut:], EdgeFeatDim: d.EdgeFeatDim, EdgeFeats: d.EdgeFeats,
	}
	if d.Labels != nil {
		train.Labels = d.Labels[:cut]
		val.Labels = d.Labels[cut:]
	}
	return train, val
}

// Stats summarizes a dataset in the shape of the paper's Table 2.
type Stats struct {
	Name        string
	NumNodes    int
	NumEvents   int
	EdgeFeatDim int
	// AvgDegree is events per node counting both endpoints, the metric the
	// paper uses when relating speedup to graph sparsity (§5.2: WIKI≈17.5,
	// REDDIT≈61.1, …).
	AvgDegree float64
	// MaxDegree is the highest per-node event count.
	MaxDegree int
	// TimeSpan is lastTime − firstTime.
	TimeSpan float64
}

// ComputeStats scans the dataset once and reports Table 2-style statistics.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{Name: d.Name, NumNodes: d.NumNodes, NumEvents: len(d.Events), EdgeFeatDim: d.EdgeFeatDim}
	if len(d.Events) == 0 {
		return s
	}
	deg := make([]int, d.NumNodes)
	for _, e := range d.Events {
		deg[e.Src]++
		deg[e.Dst]++
	}
	touched := 0
	total := 0
	for _, c := range deg {
		if c > 0 {
			touched++
			total += c
		}
		if c > s.MaxDegree {
			s.MaxDegree = c
		}
	}
	if touched > 0 {
		s.AvgDegree = float64(total) / float64(touched)
	}
	s.TimeSpan = d.Events[len(d.Events)-1].Time - d.Events[0].Time
	return s
}

// DegreeInBatches computes, for a fixed batch size, the per-node event count
// within each batch — the quantity Figure 3 histograms. The callback
// receives every (node, count-in-batch) pair with count > 0.
func (d *Dataset) DegreeInBatches(batchSize int, visit func(node int32, count int)) {
	if batchSize <= 0 {
		panic("graph: non-positive batch size")
	}
	counts := make(map[int32]int)
	flush := func() {
		for n, c := range counts {
			visit(n, c)
		}
		clear(counts)
	}
	for i, e := range d.Events {
		counts[e.Src]++
		counts[e.Dst]++
		if (i+1)%batchSize == 0 {
			flush()
		}
	}
	if len(counts) > 0 {
		flush()
	}
}
