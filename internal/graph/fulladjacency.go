package graph

import "math/rand"

// NeighborStore abstracts the temporal-neighbor table models sample from:
// the bounded ring (AdjacencyStore) trades exactness for O(1) memory per
// node; FullAdjacencyStore keeps every interaction, which is what TGL's
// sampler does — uniform sampling then draws from the node's entire
// history, and most_recent is exact at any depth.
type NeighborStore interface {
	AddEvent(e Event)
	Degree(node int32) int
	SampleMostRecent(node int32, k int, out []NeighborRecord) int
	SampleUniform(rng *rand.Rand, node int32, k int, out []NeighborRecord) int
	Reset()
	MemoryBytes() int64
	// Clone deep-copies the store (state snapshots for isolated
	// validation).
	Clone() NeighborStore
	// Checkpoint deep-copies the store into its serializable form; restore
	// with RestoreAdjacency.
	Checkpoint() *AdjacencyCheckpoint
}

// Interface checks.
var (
	_ NeighborStore = (*AdjacencyStore)(nil)
	_ NeighborStore = (*FullAdjacencyStore)(nil)
)

// FullAdjacencyStore keeps each node's complete interaction history in
// arrival order. Memory grows with the stream (the reason APAN-style
// bounded structures exist), so it suits moderate-scale runs and exactness
// tests.
type FullAdjacencyStore struct {
	hist  [][]NeighborRecord
	total int64
}

// NewFullAdjacencyStore builds an empty store for numNodes nodes.
func NewFullAdjacencyStore(numNodes int) *FullAdjacencyStore {
	return &FullAdjacencyStore{hist: make([][]NeighborRecord, numNodes)}
}

// AddEvent records the interaction at both endpoints.
func (a *FullAdjacencyStore) AddEvent(e Event) {
	a.hist[e.Src] = append(a.hist[e.Src], NeighborRecord{Neighbor: e.Dst, Time: e.Time, FeatIdx: e.FeatIdx})
	a.hist[e.Dst] = append(a.hist[e.Dst], NeighborRecord{Neighbor: e.Src, Time: e.Time, FeatIdx: e.FeatIdx})
	a.total++
}

// Degree returns the node's full interaction count.
func (a *FullAdjacencyStore) Degree(node int32) int { return len(a.hist[node]) }

// TotalEvents returns how many events were added since the last Reset.
func (a *FullAdjacencyStore) TotalEvents() int64 { return a.total }

// SampleMostRecent fills out with up to k most recent neighbors, newest
// first.
func (a *FullAdjacencyStore) SampleMostRecent(node int32, k int, out []NeighborRecord) int {
	h := a.hist[node]
	n := len(h)
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		out[i] = h[n-1-i]
	}
	return k
}

// SampleUniform fills out with k neighbors drawn uniformly over the entire
// history (with replacement), matching TGL's uniform sampler.
func (a *FullAdjacencyStore) SampleUniform(rng *rand.Rand, node int32, k int, out []NeighborRecord) int {
	h := a.hist[node]
	if len(h) == 0 {
		return 0
	}
	for i := 0; i < k; i++ {
		out[i] = h[rng.Intn(len(h))]
	}
	return k
}

// Reset clears all history.
func (a *FullAdjacencyStore) Reset() {
	for i := range a.hist {
		a.hist[i] = a.hist[i][:0]
	}
	a.total = 0
}

// MemoryBytes reports the resident size.
func (a *FullAdjacencyStore) MemoryBytes() int64 {
	var b int64
	for _, h := range a.hist {
		b += int64(cap(h)) * 16
	}
	b += int64(len(a.hist)) * 24
	return b
}

// Clone returns a deep copy of the store.
func (a *FullAdjacencyStore) Clone() NeighborStore {
	out := NewFullAdjacencyStore(len(a.hist))
	out.total = a.total
	for n, h := range a.hist {
		if len(h) > 0 {
			out.hist[n] = append([]NeighborRecord(nil), h...)
		}
	}
	return out
}
