package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The on-disk formats let generated datasets be reused across runs and let
// users bring their own event streams (the CSV layout matches the
// src,dst,timestamp[,feature...] convention of the public WIKI/REDDIT
// dumps the paper trains on).

// WriteCSV writes the dataset as a header line followed by one event per
// line: src,dst,time,featIdx. Edge features are written to a companion
// stream by WriteFeaturesCSV when present.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# cascade-ctdg name=%s nodes=%d featdim=%d\n", csvSafe(d.Name), d.NumNodes, d.EdgeFeatDim); err != nil {
		return err
	}
	for _, e := range d.Events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%g,%d\n", e.Src, e.Dst, e.Time, e.FeatIdx); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV and validates it.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, errors.New("graph: empty CSV stream")
	}
	header := sc.Text()
	d := &Dataset{}
	if !strings.HasPrefix(header, "# cascade-ctdg ") {
		return nil, fmt.Errorf("graph: bad CSV header %q", header)
	}
	for _, kv := range strings.Fields(header)[2:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("graph: bad header field %q", kv)
		}
		switch parts[0] {
		case "name":
			d.Name = parts[1]
		case "nodes":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("graph: bad node count: %w", err)
			}
			d.NumNodes = n
		case "featdim":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("graph: bad feature dim: %w", err)
			}
			d.EdgeFeatDim = n
		}
	}
	line := 1
	var prevTime float64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("graph: line %d: want 4 fields, got %d", line, len(parts))
		}
		src, err := strconv.ParseInt(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d src: %w", line, err)
		}
		dst, err := strconv.ParseInt(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d dst: %w", line, err)
		}
		t, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d time: %w", line, err)
		}
		fi, err := strconv.ParseInt(parts[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d featIdx: %w", line, err)
		}
		// Stream invariants are enforced as each line arrives — the header
		// already fixed the node universe, so a bad record is reported with
		// its source line number instead of a post-hoc event index.
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("line %d: %w: t=%v", line, ErrNonFiniteTime, t)
		}
		if t < prevTime {
			return nil, fmt.Errorf("line %d: %w: t=%v after t=%v", line, ErrUnsortedTimestamps, t, prevTime)
		}
		prevTime = t
		if src < 0 || int(src) >= d.NumNodes || dst < 0 || int(dst) >= d.NumNodes {
			return nil, fmt.Errorf("line %d: %w: %d→%d with %d nodes", line, ErrNodeOutOfRange, src, dst, d.NumNodes)
		}
		if src == dst {
			return nil, fmt.Errorf("line %d: %w: node %d", line, ErrSelfLoop, src)
		}
		d.Events = append(d.Events, Event{Src: int32(src), Dst: int32(dst), Time: t, FeatIdx: int32(fi)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// CSV carries no feature table; a dataset that declares features must
	// have them attached (ReadBinary round-trips them) — flag indices are
	// validated against an empty table otherwise.
	if d.EdgeFeatDim > 0 && d.EdgeFeats == nil {
		return nil, fmt.Errorf("graph: CSV declares featdim=%d but carries no feature table; use the binary format", d.EdgeFeatDim)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func csvSafe(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == ',' {
			return '_'
		}
		return r
	}, s)
}

// binaryMagic identifies the binary dataset format.
var binaryMagic = [8]byte{'C', 'A', 'S', 'C', 'T', 'D', 'G', '1'}

// WriteBinary serializes the full dataset — events and edge features — in a
// compact little-endian format.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	name := []byte(d.Name)
	hdr := []uint64{uint64(len(name)), uint64(d.NumNodes), uint64(d.EdgeFeatDim), uint64(len(d.Events)), uint64(len(d.EdgeFeats))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	for _, e := range d.Events {
		if err := binary.Write(bw, binary.LittleEndian, e.Src); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.Dst); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(e.Time)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.FeatIdx); err != nil {
			return err
		}
	}
	for _, f := range d.EdgeFeats {
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(f)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a dataset written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	const sane = 1 << 33
	for i, v := range hdr {
		if v > sane {
			return nil, fmt.Errorf("graph: header field %d implausibly large (%d)", i, v)
		}
	}
	// Allocation from untrusted counts is capped; slices grow as data
	// actually arrives, so a forged header cannot force a huge allocation.
	const allocCap = 1 << 16
	name := make([]byte, hdr[0])
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("graph: reading name: %w", err)
	}
	d := &Dataset{
		Name:        string(name),
		NumNodes:    int(hdr[1]),
		EdgeFeatDim: int(hdr[2]),
		Events:      make([]Event, 0, min(hdr[3], allocCap)),
	}
	for i := uint64(0); i < hdr[3]; i++ {
		var e Event
		var timeBits uint64
		if err := binary.Read(br, binary.LittleEndian, &e.Src); err != nil {
			return nil, fmt.Errorf("graph: event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &e.Dst); err != nil {
			return nil, fmt.Errorf("graph: event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &timeBits); err != nil {
			return nil, fmt.Errorf("graph: event %d: %w", i, err)
		}
		e.Time = math.Float64frombits(timeBits)
		if err := binary.Read(br, binary.LittleEndian, &e.FeatIdx); err != nil {
			return nil, fmt.Errorf("graph: event %d: %w", i, err)
		}
		d.Events = append(d.Events, e)
	}
	if hdr[4] > 0 {
		d.EdgeFeats = make([]float32, 0, min(hdr[4], allocCap))
		for i := uint64(0); i < hdr[4]; i++ {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("graph: feature %d: %w", i, err)
			}
			d.EdgeFeats = append(d.EdgeFeats, math.Float32frombits(bits))
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
