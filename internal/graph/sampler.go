package graph

import (
	"fmt"
	"math/rand"
)

// NeighborRecord is one entry of a node's temporal neighborhood: who it
// interacted with, when, and which edge feature row the interaction carried.
type NeighborRecord struct {
	Neighbor int32
	Time     float64
	FeatIdx  int32
}

// AdjacencyStore maintains, for every node, a bounded ring buffer of its most
// recent interactions. It is the temporal neighbor table TGNN samplers draw
// from (§2.2, N(u)): TGL keeps an analogous per-node recent-neighbor list on
// the GPU. Capacity bounds memory like APAN's mailbox bounds messages.
type AdjacencyStore struct {
	capacity int
	// rings[n] is the ring buffer for node n; counts[n] is the number of
	// valid entries (≤ capacity); heads[n] is the next write slot.
	rings  [][]NeighborRecord
	counts []int
	heads  []int
	total  int64
}

// NewAdjacencyStore builds a store for numNodes nodes keeping up to capacity
// recent interactions per node.
func NewAdjacencyStore(numNodes, capacity int) *AdjacencyStore {
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: adjacency capacity %d", capacity))
	}
	return &AdjacencyStore{
		capacity: capacity,
		rings:    make([][]NeighborRecord, numNodes),
		counts:   make([]int, numNodes),
		heads:    make([]int, numNodes),
	}
}

// AddEvent records the interaction at both endpoints.
func (a *AdjacencyStore) AddEvent(e Event) {
	a.add(e.Src, NeighborRecord{Neighbor: e.Dst, Time: e.Time, FeatIdx: e.FeatIdx})
	a.add(e.Dst, NeighborRecord{Neighbor: e.Src, Time: e.Time, FeatIdx: e.FeatIdx})
	a.total++
}

func (a *AdjacencyStore) add(node int32, rec NeighborRecord) {
	ring := a.rings[node]
	if ring == nil {
		ring = make([]NeighborRecord, a.capacity)
		a.rings[node] = ring
	}
	ring[a.heads[node]] = rec
	a.heads[node] = (a.heads[node] + 1) % a.capacity
	if a.counts[node] < a.capacity {
		a.counts[node]++
	}
}

// Degree returns the number of retained interactions for node (≤ capacity).
func (a *AdjacencyStore) Degree(node int32) int { return a.counts[node] }

// TotalEvents returns how many events were added since the last Reset.
func (a *AdjacencyStore) TotalEvents() int64 { return a.total }

// SampleMostRecent fills out with up to k most-recent neighbors of node,
// newest first, returning the count. This is the most_recent sampling of
// JODIE/TGN/APAN (Table 1).
func (a *AdjacencyStore) SampleMostRecent(node int32, k int, out []NeighborRecord) int {
	n := a.counts[node]
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	ring := a.rings[node]
	for i := 0; i < k; i++ {
		idx := (a.heads[node] - 1 - i + 2*a.capacity) % a.capacity
		out[i] = ring[idx]
	}
	return k
}

// SampleUniform fills out with up to k neighbors sampled uniformly (with
// replacement when the retained history is smaller than k — the TGL sampler
// behaves the same when a node has fewer neighbors than requested). This is
// the uniform sampling of DySAT/TGAT (Table 1).
func (a *AdjacencyStore) SampleUniform(rng *rand.Rand, node int32, k int, out []NeighborRecord) int {
	n := a.counts[node]
	if n == 0 {
		return 0
	}
	ring := a.rings[node]
	for i := 0; i < k; i++ {
		j := rng.Intn(n)
		idx := (a.heads[node] - 1 - j + 2*a.capacity) % a.capacity
		out[i] = ring[idx]
	}
	return k
}

// Reset clears all history (start of an epoch).
func (a *AdjacencyStore) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
		a.heads[i] = 0
	}
	a.total = 0
}

// MemoryBytes estimates the resident size of the store, used by the space
// breakdown experiment (Fig. 13c).
func (a *AdjacencyStore) MemoryBytes() int64 {
	var b int64
	for _, r := range a.rings {
		b += int64(len(r)) * 16 // int32 + float64 + int32
	}
	b += int64(len(a.counts)+len(a.heads)) * 8
	return b
}

// Clone returns a deep copy of the store (state snapshots for isolated
// validation).
func (a *AdjacencyStore) Clone() NeighborStore {
	out := NewAdjacencyStore(len(a.rings), a.capacity)
	copy(out.counts, a.counts)
	copy(out.heads, a.heads)
	out.total = a.total
	for n, ring := range a.rings {
		if ring != nil {
			out.rings[n] = append([]NeighborRecord(nil), ring...)
		}
	}
	return out
}
