package graph

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValidateRejectsNonFiniteTime(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		d := &Dataset{NumNodes: 4, Events: []Event{
			{Src: 0, Dst: 1, Time: 1, FeatIdx: -1},
			{Src: 1, Dst: 2, Time: bad, FeatIdx: -1},
		}}
		err := d.Validate()
		if !errors.Is(err, ErrNonFiniteTime) {
			t.Fatalf("t=%v: err %v, want ErrNonFiniteTime", bad, err)
		}
		if !strings.Contains(err.Error(), "event 1") {
			t.Fatalf("error does not name the offending event: %v", err)
		}
	}
}

func TestValidateRejectsNonFiniteFeature(t *testing.T) {
	d := &Dataset{NumNodes: 4, EdgeFeatDim: 2,
		Events:    []Event{{Src: 0, Dst: 1, Time: 1, FeatIdx: 0}},
		EdgeFeats: []float32{1, float32(math.NaN())},
	}
	err := d.Validate()
	if !errors.Is(err, ErrNonFiniteFeature) {
		t.Fatalf("err %v, want ErrNonFiniteFeature", err)
	}
	// Row/column coordinates locate the poisoned value.
	if !strings.Contains(err.Error(), "row 0 column 1") {
		t.Fatalf("error does not locate the value: %v", err)
	}
}

// csvHeader is a minimal valid header for the inline-validation tests.
const csvHeader = "# cascade-ctdg name=t nodes=4 featdim=0\n"

func TestReadCSVRejectsUnsortedWithLineNumber(t *testing.T) {
	_, err := ReadCSV(strings.NewReader(csvHeader + "0,1,5,-1\n1,2,3,-1\n"))
	if !errors.Is(err, ErrUnsortedTimestamps) {
		t.Fatalf("err %v, want ErrUnsortedTimestamps", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not carry the line number: %v", err)
	}
}

func TestReadCSVRejectsNonFiniteTimeWithLineNumber(t *testing.T) {
	for _, bad := range []string{"NaN", "+Inf", "-Inf"} {
		_, err := ReadCSV(strings.NewReader(csvHeader + "0,1,1,-1\n1,2," + bad + ",-1\n"))
		if !errors.Is(err, ErrNonFiniteTime) {
			t.Fatalf("t=%s: err %v, want ErrNonFiniteTime", bad, err)
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Fatalf("t=%s: error does not carry the line number: %v", bad, err)
		}
	}
}

func TestReadCSVRejectsOutOfRangeNodeWithLineNumber(t *testing.T) {
	_, err := ReadCSV(strings.NewReader(csvHeader + "0,1,1,-1\n1,9,2,-1\n"))
	if !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("err %v, want ErrNodeOutOfRange", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not carry the line number: %v", err)
	}
}

func TestReadCSVRejectsSelfLoopWithLineNumber(t *testing.T) {
	_, err := ReadCSV(strings.NewReader(csvHeader + "0,1,1,-1\n2,2,2,-1\n"))
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err %v, want ErrSelfLoop", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not carry the line number: %v", err)
	}
}

func TestReadBinaryRejectsNonFiniteFeature(t *testing.T) {
	src := &Dataset{Name: "t", NumNodes: 4, EdgeFeatDim: 1,
		Events:    []Event{{Src: 0, Dst: 1, Time: 1, FeatIdx: 0}},
		EdgeFeats: []float32{float32(math.Inf(1))},
	}
	var buf strings.Builder
	if err := src.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBinary(strings.NewReader(buf.String()))
	if !errors.Is(err, ErrNonFiniteFeature) {
		t.Fatalf("err %v, want ErrNonFiniteFeature", err)
	}
}
