package graph

import (
	"math"
	"testing"
)

func TestTemporalStatsRepeatRatios(t *testing.T) {
	d := &Dataset{NumNodes: 4, Events: []Event{
		{Src: 0, Dst: 1, Time: 1, FeatIdx: -1},
		{Src: 0, Dst: 1, Time: 2, FeatIdx: -1}, // repeat pair + recent repeat
		{Src: 1, Dst: 0, Time: 3, FeatIdx: -1}, // repeat pair (undirected)
		{Src: 2, Dst: 3, Time: 4, FeatIdx: -1}, // fresh
	}}
	ts := d.ComputeTemporalStats()
	if ts.RepeatPairRatio != 0.5 {
		t.Fatalf("repeat pair ratio %v, want 0.5", ts.RepeatPairRatio)
	}
	if ts.RecentRepeatRatio != 0.25 {
		t.Fatalf("recent repeat ratio %v, want 0.25", ts.RecentRepeatRatio)
	}
	if ts.MeanInterArrival != 1 {
		t.Fatalf("mean inter-arrival %v", ts.MeanInterArrival)
	}
	if ts.P99InterArrival != 1 {
		t.Fatalf("p99 inter-arrival %v", ts.P99InterArrival)
	}
}

func TestTemporalStatsEmpty(t *testing.T) {
	var d Dataset
	if ts := d.ComputeTemporalStats(); ts.RepeatPairRatio != 0 {
		t.Fatalf("%+v", ts)
	}
}

func TestGiniDegreeExtremes(t *testing.T) {
	// Uniform degrees → Gini ≈ 0.
	uniform := &Dataset{NumNodes: 4, Events: []Event{
		{Src: 0, Dst: 1, Time: 1, FeatIdx: -1},
		{Src: 2, Dst: 3, Time: 2, FeatIdx: -1},
	}}
	if g := uniform.GiniDegree(); math.Abs(g) > 1e-9 {
		t.Fatalf("uniform gini %v", g)
	}
	// All events on one pair → still uniform between the two touched nodes.
	hot := &Dataset{NumNodes: 10, Events: make([]Event, 20)}
	for i := range hot.Events {
		hot.Events[i] = Event{Src: 0, Dst: int32(1 + i%9), Time: float64(i), FeatIdx: -1}
	}
	g := hot.GiniDegree()
	if g <= 0.2 || g > 1 {
		t.Fatalf("skewed gini %v, want clearly positive", g)
	}
	if empty := (&Dataset{NumNodes: 3}).GiniDegree(); empty != 0 {
		t.Fatalf("empty gini %v", empty)
	}
}

func TestDegreeCDFSortedNonZero(t *testing.T) {
	d := tinyDataset()
	cdf := d.DegreeCDF()
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("CDF not sorted")
		}
	}
	for _, c := range cdf {
		if c == 0 {
			t.Fatal("zero-degree node included")
		}
	}
}
