package graph

import "sort"

// Temporal statistics beyond Table 2's counts: the properties Cascade's
// gains actually depend on (DESIGN.md §1) — repeat affinity (how often an
// event repeats a recently seen pair, the driver of memory stabilization,
// Fig. 5) and inter-arrival spread. The datagen tests use these to check
// generator calibration; cascade-data reports them.

// TemporalStats summarizes the stream's temporal structure.
type TemporalStats struct {
	// RepeatPairRatio is the fraction of events whose (src, dst) pair
	// occurred before (in either direction).
	RepeatPairRatio float64
	// RecentRepeatRatio is the fraction of events repeating one of the
	// source's last-4 destinations — the generator's repeat-affinity knob
	// measured back from the data.
	RecentRepeatRatio float64
	// MeanInterArrival and P99InterArrival summarize consecutive event
	// gaps.
	MeanInterArrival, P99InterArrival float64
}

// ComputeTemporalStats scans the stream once.
func (d *Dataset) ComputeTemporalStats() TemporalStats {
	var ts TemporalStats
	n := len(d.Events)
	if n == 0 {
		return ts
	}
	type pair struct{ a, b int32 }
	seen := make(map[pair]bool, n)
	recent := make(map[int32][]int32)
	var repeats, recents int
	gaps := make([]float64, 0, n-1)
	var gapSum float64
	for i, e := range d.Events {
		a, b := e.Src, e.Dst
		if a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if seen[p] {
			repeats++
		}
		seen[p] = true

		r := recent[e.Src]
		for _, dst := range r {
			if dst == e.Dst {
				recents++
				break
			}
		}
		if len(r) < 4 {
			recent[e.Src] = append(r, e.Dst)
		} else {
			r[i%4] = e.Dst
		}

		if i > 0 {
			g := e.Time - d.Events[i-1].Time
			gaps = append(gaps, g)
			gapSum += g
		}
	}
	ts.RepeatPairRatio = float64(repeats) / float64(n)
	ts.RecentRepeatRatio = float64(recents) / float64(n)
	if len(gaps) > 0 {
		ts.MeanInterArrival = gapSum / float64(len(gaps))
		sort.Float64s(gaps)
		ts.P99InterArrival = gaps[(len(gaps)-1)*99/100]
	}
	return ts
}

// DegreeCDF returns the sorted per-node total degrees (for percentile
// queries and skew checks).
func (d *Dataset) DegreeCDF() []int {
	deg := make([]int, d.NumNodes)
	for _, e := range d.Events {
		deg[e.Src]++
		deg[e.Dst]++
	}
	out := deg[:0]
	for _, c := range deg {
		if c > 0 {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// GiniDegree computes the Gini coefficient of the (non-zero) degree
// distribution — a single-number skew measure: 0 = uniform, →1 = all events
// on one node.
func (d *Dataset) GiniDegree() float64 {
	cdf := d.DegreeCDF()
	n := len(cdf)
	if n == 0 {
		return 0
	}
	var cum, weighted float64
	for i, c := range cdf {
		cum += float64(c)
		weighted += float64(c) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}
