package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{
		Name:     "round trip", // space gets sanitized
		NumNodes: 4,
		Events: []Event{
			{Src: 0, Dst: 1, Time: 1.5, FeatIdx: -1},
			{Src: 1, Dst: 3, Time: 2.25, FeatIdx: -1},
		},
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "round_trip" || got.NumNodes != 4 || len(got.Events) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range d.Events {
		if got.Events[i] != d.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], d.Events[i])
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                         // empty
		"not a header\n0,1,1,-1\n", // bad header
		"# cascade-ctdg nodes=x\n", // bad node count
		"# cascade-ctdg nodes=2 featdim=0\n0,1\n",                // short line
		"# cascade-ctdg nodes=2 featdim=0\n0,1,abc,-1\n",         // bad time
		"# cascade-ctdg nodes=2 featdim=0\n0,9,1,-1\n",           // out of range
		"# cascade-ctdg nodes=2 featdim=4\n0,1,1,0\n",            // features missing
		"# cascade-ctdg nodes=2 featdim=0\n0,1,2,-1\n0,1,1,-1\n", // unsorted
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# cascade-ctdg name=x nodes=3 featdim=0\n\n# comment\n0,1,1,-1\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 1 {
		t.Fatalf("events %d", len(d.Events))
	}
}

func TestBinaryRoundTripWithFeatures(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.NumNodes != d.NumNodes || got.EdgeFeatDim != d.EdgeFeatDim {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range d.Events {
		if got.Events[i] != d.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
	for i := range d.EdgeFeats {
		if got.EdgeFeats[i] != d.EdgeFeats[i] {
			t.Fatalf("feature %d mismatch", i)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations at every prefix must fail, never panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Implausible header (claims 2^40 events).
	bad = append([]byte(nil), full...)
	for i := 0; i < 8; i++ {
		bad[8+3*8+i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestBinaryRejectsInvalidDataset(t *testing.T) {
	// A stream that decodes structurally but violates CTDG invariants
	// (self loop) must be rejected by validation.
	d := tinyDataset()
	d.Events[0].Dst = d.Events[0].Src
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("self-loop dataset accepted")
	}
}
