package graph

import (
	"testing"
	"testing/quick"

	"math/rand"
)

func TestSnapshotsPartitionEvents(t *testing.T) {
	d := tinyDataset() // times 1..4
	snaps, err := d.Snapshots(1.5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range snaps {
		if s.Index != i {
			t.Fatalf("index %d != %d", s.Index, i)
		}
		total += len(s.Events)
		for _, e := range s.Events {
			if i < len(snaps)-1 && (e.Time < s.Start || e.Time >= s.End) {
				t.Fatalf("event t=%v outside [%v,%v)", e.Time, s.Start, s.End)
			}
		}
	}
	if total != d.NumEvents() {
		t.Fatalf("snapshots cover %d of %d events", total, d.NumEvents())
	}
}

func TestSnapshotsByCount(t *testing.T) {
	d := tinyDataset()
	snaps, err := d.SnapshotsByCount(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	total := 0
	for _, s := range snaps {
		total += len(s.Events)
	}
	if total != d.NumEvents() {
		t.Fatalf("coverage %d", total)
	}
}

func TestSnapshotsValidation(t *testing.T) {
	d := tinyDataset()
	if _, err := d.Snapshots(0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := d.SnapshotsByCount(0); err == nil {
		t.Fatal("zero count accepted")
	}
	empty := &Dataset{NumNodes: 1}
	if snaps, err := empty.Snapshots(1); err != nil || snaps != nil {
		t.Fatalf("empty dataset: %v %v", snaps, err)
	}
}

func TestSnapshotsUniformTimestamp(t *testing.T) {
	d := &Dataset{NumNodes: 3, Events: []Event{
		{Src: 0, Dst: 1, Time: 5, FeatIdx: -1},
		{Src: 1, Dst: 2, Time: 5, FeatIdx: -1},
	}}
	snaps, err := d.SnapshotsByCount(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(snaps[0].Events) != 2 {
		t.Fatalf("degenerate span: %+v", snaps)
	}
}

func TestAdjacencyAt(t *testing.T) {
	d := tinyDataset()
	snaps, err := d.SnapshotsByCount(2)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := AdjacencyAt(snaps, len(snaps)-1, d.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	deg := 0
	for _, ns := range adj {
		deg += len(ns)
	}
	if deg != 2*d.NumEvents() {
		t.Fatalf("cumulative adjacency has %d endpoints, want %d", deg, 2*d.NumEvents())
	}
	if _, err := AdjacencyAt(snaps, 99, d.NumNodes); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
}

// Property: for random streams and intervals, snapshots preserve event order
// and lose nothing.
func TestSnapshotsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, intRaw uint8) bool {
		n := int(nRaw)%100 + 2
		interval := float64(intRaw%50) + 0.5
		rng := rand.New(rand.NewSource(seed))
		d := &Dataset{NumNodes: 10}
		t0 := 0.0
		for i := 0; i < n; i++ {
			t0 += rng.Float64() * 3
			s := int32(rng.Intn(10))
			dd := (s + 1 + int32(rng.Intn(8))) % 10
			if dd == s {
				dd = (dd + 1) % 10
			}
			d.Events = append(d.Events, Event{Src: s, Dst: dd, Time: t0, FeatIdx: -1})
		}
		snaps, err := d.Snapshots(interval)
		if err != nil {
			return false
		}
		var flat []Event
		for _, s := range snaps {
			flat = append(flat, s.Events...)
		}
		if len(flat) != n {
			return false
		}
		for i := range flat {
			if flat[i] != d.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
