package graph

import "fmt"

// DTDG support (§2.1): discrete-time dynamic graphs are "specific instances
// of CTDGs, distinguished by the segmentation of events into uniform time
// intervals". Snapshot views let DTDG-style consumers (DySAT, TGAT in their
// original formulations) read the same event stream as a sequence of static
// graphs.

// Snapshot is one discrete-time view: the events whose timestamps fall in
// [Start, End) plus the cumulative adjacency up to End.
type Snapshot struct {
	Index      int
	Start, End float64
	// Events are the interval's events (a subslice of the dataset).
	Events []Event
}

// Snapshots segments the dataset into uniform time intervals of the given
// width. The final snapshot is right-closed so the last event is included.
func (d *Dataset) Snapshots(interval float64) ([]Snapshot, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("graph: non-positive snapshot interval %v", interval)
	}
	if len(d.Events) == 0 {
		return nil, nil
	}
	t0 := d.Events[0].Time
	tEnd := d.Events[len(d.Events)-1].Time
	n := int((tEnd-t0)/interval) + 1
	snaps := make([]Snapshot, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		start := t0 + float64(i)*interval
		end := start + interval
		hi := lo
		for hi < len(d.Events) {
			t := d.Events[hi].Time
			if t >= end && !(i == n-1 && t <= tEnd) {
				break
			}
			hi++
		}
		snaps = append(snaps, Snapshot{Index: i, Start: start, End: end, Events: d.Events[lo:hi]})
		lo = hi
	}
	if lo != len(d.Events) {
		return nil, fmt.Errorf("graph: snapshot segmentation lost events (%d of %d)", lo, len(d.Events))
	}
	return snaps, nil
}

// SnapshotsByCount segments the dataset into count uniform intervals.
func (d *Dataset) SnapshotsByCount(count int) ([]Snapshot, error) {
	if count <= 0 {
		return nil, fmt.Errorf("graph: non-positive snapshot count %d", count)
	}
	if len(d.Events) == 0 {
		return nil, nil
	}
	span := d.Events[len(d.Events)-1].Time - d.Events[0].Time
	if span <= 0 {
		// All events share one timestamp: a single snapshot.
		return []Snapshot{{Index: 0, Start: d.Events[0].Time, End: d.Events[0].Time + 1, Events: d.Events}}, nil
	}
	return d.Snapshots(span / float64(count))
}

// AdjacencyAt builds the static adjacency (neighbor lists) of all events up
// to and including snapshot index, the "graph snapshot" a DTDG model would
// consume.
func AdjacencyAt(snaps []Snapshot, index, numNodes int) ([][]int32, error) {
	if index < 0 || index >= len(snaps) {
		return nil, fmt.Errorf("graph: snapshot index %d of %d", index, len(snaps))
	}
	adj := make([][]int32, numNodes)
	for i := 0; i <= index; i++ {
		for _, e := range snaps[i].Events {
			adj[e.Src] = append(adj[e.Src], e.Dst)
			adj[e.Dst] = append(adj[e.Dst], e.Src)
		}
	}
	return adj, nil
}
