package graph

import "fmt"

// Adjacency-store kinds recorded in checkpoints.
const (
	adjKindRing = "ring"
	adjKindFull = "full"
)

// AdjacencyCheckpoint is the serializable deep copy of a NeighborStore —
// the temporal-adjacency section of a full-state training checkpoint
// (internal/resilience). Fields are exported for gob; Kind selects the
// concrete store on restore.
type AdjacencyCheckpoint struct {
	Kind     string
	Capacity int // ring stores only
	// Rings[n] is the per-node record storage: the raw ring buffer for ring
	// stores (nil for untouched nodes), the full history for full stores.
	Rings         [][]NeighborRecord
	Counts, Heads []int // ring stores only
	Total         int64
}

// Checkpoint implements NeighborStore.
func (a *AdjacencyStore) Checkpoint() *AdjacencyCheckpoint {
	c := &AdjacencyCheckpoint{
		Kind:     adjKindRing,
		Capacity: a.capacity,
		Rings:    make([][]NeighborRecord, len(a.rings)),
		Counts:   append([]int(nil), a.counts...),
		Heads:    append([]int(nil), a.heads...),
		Total:    a.total,
	}
	for n, ring := range a.rings {
		if ring != nil {
			c.Rings[n] = append([]NeighborRecord(nil), ring...)
		}
	}
	return c
}

// Checkpoint implements NeighborStore.
func (a *FullAdjacencyStore) Checkpoint() *AdjacencyCheckpoint {
	c := &AdjacencyCheckpoint{
		Kind:  adjKindFull,
		Rings: make([][]NeighborRecord, len(a.hist)),
		Total: a.total,
	}
	for n, h := range a.hist {
		if len(h) > 0 {
			c.Rings[n] = append([]NeighborRecord(nil), h...)
		}
	}
	return c
}

// RestoreAdjacency rebuilds the concrete NeighborStore a checkpoint was
// taken from.
func RestoreAdjacency(c *AdjacencyCheckpoint) (NeighborStore, error) {
	if c == nil {
		return nil, fmt.Errorf("graph: nil adjacency checkpoint")
	}
	switch c.Kind {
	case adjKindRing:
		if c.Capacity <= 0 {
			return nil, fmt.Errorf("graph: ring adjacency checkpoint with capacity %d", c.Capacity)
		}
		n := len(c.Rings)
		if len(c.Counts) != n || len(c.Heads) != n {
			return nil, fmt.Errorf("graph: ring adjacency checkpoint arrays disagree (%d rings, %d counts, %d heads)", n, len(c.Counts), len(c.Heads))
		}
		out := NewAdjacencyStore(n, c.Capacity)
		copy(out.counts, c.Counts)
		copy(out.heads, c.Heads)
		out.total = c.Total
		for i, ring := range c.Rings {
			if ring == nil {
				continue
			}
			if len(ring) != c.Capacity {
				return nil, fmt.Errorf("graph: ring adjacency checkpoint node %d ring has %d slots, capacity %d", i, len(ring), c.Capacity)
			}
			out.rings[i] = append([]NeighborRecord(nil), ring...)
		}
		return out, nil
	case adjKindFull:
		out := NewFullAdjacencyStore(len(c.Rings))
		out.total = c.Total
		for i, h := range c.Rings {
			if len(h) > 0 {
				out.hist[i] = append([]NeighborRecord(nil), h...)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("graph: unknown adjacency checkpoint kind %q", c.Kind)
	}
}
