package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzzing the two dataset parsers: any byte stream must either produce a
// dataset passing Validate or an error — never a panic, never an invalid
// dataset.

func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := tinyDataset().WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("# cascade-ctdg name=x nodes=3 featdim=0\n0,1,1,-1\n")
	f.Add("# cascade-ctdg nodes=bad\n")
	f.Add("")
	f.Add("# cascade-ctdg name=y nodes=2 featdim=0\n0,1,1.5,-1\n1,0,2.5,-1\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid dataset: %v", verr)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := tinyDataset().WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CASCTDG1"))
	trunc := seed.Bytes()
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, input []byte) {
		d, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid dataset: %v", verr)
		}
	})
}
