package train

import (
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
)

func moocData(t testing.TB) (*graph.Dataset, *graph.Dataset, *graph.Dataset) {
	t.Helper()
	full := datagen.Mooc.Generate(datagen.Options{Scale: 0.0025, Seed: 71, FeatDimOverride: 8, MinNodes: 80, MinEvents: 1000})
	if full.Labels == nil {
		t.Fatal("MOOC profile generated no labels")
	}
	tr, val := full.Split(0.8)
	return full, tr, val
}

func TestNodeClassificationLearns(t *testing.T) {
	full, tr, val := moocData(t)
	m := models.MustNew("TGN", full, 16, 4, 5)
	trainer, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val, ValBatch: 100, Seed: 9, LR: 2e-3,
		Task: TaskNodeClassification,
	})
	if err != nil {
		t.Fatal(err)
	}
	epochs := trainer.Train(6)
	first, last := epochs[0].Loss, epochs[len(epochs)-1].Loss
	if math.IsNaN(last) || last >= first {
		t.Fatalf("classification did not improve: %.4f → %.4f", first, last)
	}
	met := trainer.ValidateClass()
	if met.Events != val.NumEvents() {
		t.Fatalf("scored %d of %d", met.Events, val.NumEvents())
	}
	// Labels are driven by "risky" destinations, visible through memories
	// and edge features: a trained model must clearly beat chance.
	if met.AUC <= 0.6 {
		t.Fatalf("classification AUC %.3f barely above chance", met.AUC)
	}
}

func TestNodeClassificationUnderCascade(t *testing.T) {
	full, tr, val := moocData(t)
	m := models.MustNew("JODIE", full, 16, 4, 5)
	sched := core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 40, Workers: 2, Seed: 1})
	trainer, err := NewTrainer(Config{
		Model: m, Sched: sched, Data: tr, Val: val, ValBatch: 100, Seed: 9,
		Task: TaskNodeClassification,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trainer.TrainEpoch()
	if math.IsNaN(st.Loss) || st.Loss <= 0 {
		t.Fatalf("loss %v", st.Loss)
	}
	if st.MeanBatchSize < 40 {
		t.Fatalf("Cascade mean batch %.1f below base", st.MeanBatchSize)
	}
}

func TestNodeClassificationRequiresLabels(t *testing.T) {
	full, tr, _ := trainValData(t) // WIKI: no labels
	m := models.MustNew("TGN", full, 8, 4, 1)
	_, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Task: TaskNodeClassification,
	})
	if err == nil {
		t.Fatal("unlabeled dataset accepted for classification")
	}
}

func TestValidateClassOnLinkTrainerPanics(t *testing.T) {
	full, tr, val := trainValData(t)
	m := models.MustNew("TGN", full, 8, 4, 1)
	trainer, err := NewTrainer(Config{Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50), Data: tr, Val: val})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	trainer.ValidateClass()
}

func TestBatchLabelsAlignment(t *testing.T) {
	labels := []uint8{0, 1, 0, 1, 1}
	got := batchLabels(labels, batching.Batch{St: 1, Ed: 4})
	if len(got) != 3 || got[0] != 1 || got[2] != 1 {
		t.Fatalf("contiguous labels %v", got)
	}
	got = batchLabels(labels, batching.Batch{Indices: []int{4, 0}})
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("indexed labels %v", got)
	}
}

func TestNodeClassificationWithNeutronStreamLayers(t *testing.T) {
	// Indexed batches must route labels correctly.
	full, tr, val := moocData(t)
	m := models.MustNew("TGN", full, 8, 4, 5)
	trainer, err := NewTrainer(Config{
		Model: m, Sched: batching.NewNeutronStream(tr.Events, 50),
		Data: tr, Val: val, ValBatch: 100, Seed: 9,
		Task: TaskNodeClassification,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trainer.TrainEpoch()
	if math.IsNaN(st.Loss) || st.Loss <= 0 {
		t.Fatalf("loss %v", st.Loss)
	}
}
