package train

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// TestErrorReturnJoinsPrefetch covers TrainEpochChecked's early-error exits
// with the prefetch pipeline enabled: the in-flight prefetch goroutine must
// be joined (its batch released back to the arena), the trainer must stay
// usable, and — under -race — the rng handoff must stay clean. Both abort
// flavors exercise different exit points (abort fires at the loop bottom,
// the NaN check right after backward).
func TestErrorReturnJoinsPrefetch(t *testing.T) {
	full, tr, val := trainValData(t)
	for _, tc := range []struct {
		name string
		arm  func(*faultinject.Injector)
		want func(error) bool
	}{
		{
			name: "injected-abort",
			arm:  func(inj *faultinject.Injector) { inj.Arm(faultinject.PointTrainAbort, 3) },
			want: func(err error) bool { return errors.Is(err, faultinject.ErrInjected) },
		},
		{
			name: "nan-grad-health",
			arm:  func(inj *faultinject.Injector) { inj.Arm(faultinject.PointTrainNaNGrad, 3) },
			want: func(err error) bool {
				var he *HealthError
				return errors.As(err, &he) && he.Kind == HealthNonFiniteGrad
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := models.MustNew("TGN", full, 16, 4, 5)
			sched := core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
			tt, err := NewTrainer(Config{
				Model: m, Sched: sched, Data: tr, Val: val, LR: 2e-3, ValBatch: 100, Seed: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			tt.SetHealth(HealthConfig{Enabled: true})
			inj := faultinject.New()
			tc.arm(inj)
			tt.SetInjector(inj)

			before := runtime.NumGoroutine()
			_, err = tt.TrainEpochChecked()
			if err == nil || !tc.want(err) {
				t.Fatalf("wrong error: %v", err)
			}
			// The prefetch goroutine must be gone, not parked on a dead channel.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if got := runtime.NumGoroutine(); got > before {
				t.Fatalf("goroutines leaked: %d before, %d after error return", before, got)
			}
			// The trainer must still run a full clean epoch after the failure.
			st, err := tt.TrainEpochChecked()
			if err != nil {
				t.Fatalf("trainer unusable after error return: %v", err)
			}
			if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
				t.Fatalf("post-recovery loss %v", st.Loss)
			}
		})
	}
}

// TestCheckpointCadenceRequiresCheckpointableSched: with a scheduler that
// cannot serialize its state (ShuffledFixed owns a bare rand.Rand), the
// mid-epoch cadence must be silently skipped rather than producing
// checkpoints that cannot restore.
func TestCheckpointCadenceRequiresCheckpointableSched(t *testing.T) {
	full, tr, val := trainValData(t)
	m := models.MustNew("TGN", full, 16, 4, 5)
	sched := batching.NewShuffledFixed("TGL-LB", tr.NumEvents(), 60, 3)
	tt, err := NewTrainer(Config{Model: m, Sched: sched, Data: tr, Val: val, LR: 2e-3, ValBatch: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	tt.SetCheckpointCadence(2, func(*CheckpointState) error { calls++; return nil })
	if _, err := tt.TrainEpochChecked(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("cadence fired %d times under a non-checkpointable scheduler", calls)
	}
}
