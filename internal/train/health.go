package train

import (
	"fmt"
	"math"
)

// HealthConfig turns on the trainer's numerical-health monitor. With the
// monitor enabled, TrainEpochChecked inspects every batch's loss and gradient
// norm and aborts the epoch with a *HealthError the moment training goes
// numerically bad — leaving the weights at their last finite values (the
// optimizer step that would have applied a non-finite gradient is skipped).
// The resilience.Manager turns these errors into checkpoint rollbacks with
// learning-rate backoff.
type HealthConfig struct {
	// Enabled switches the monitor on.
	Enabled bool
	// MaxGradNorm, when > 0, flags a finite global gradient norm above this
	// value as exploding (non-finite norms are always flagged). Gradient
	// clipping (Adam.GradClip) still applies to healthy batches; this bound
	// is the "clipping cannot save this" escape hatch.
	MaxGradNorm float64
	// SpikeFactor, when > 1, flags a batch loss exceeding SpikeFactor × the
	// trailing-window mean loss as a spike.
	SpikeFactor float64
	// SpikeWindow is the trailing-mean window in batches (default 20). Spike
	// detection starts only once the window is full, so the first batches of
	// a run cannot false-positive.
	SpikeWindow int
}

func (h *HealthConfig) fillDefaults() {
	if h.SpikeWindow <= 0 {
		h.SpikeWindow = 20
	}
}

// Health error kinds.
const (
	HealthNonFiniteLoss = "nonfinite-loss"
	HealthNonFiniteGrad = "nonfinite-grad"
	HealthExplodingGrad = "exploding-grad"
	HealthLossSpike     = "loss-spike"
)

// HealthError reports a numerical-health violation that aborted an epoch.
type HealthError struct {
	Epoch, Batch int
	Kind         string
	Loss         float64
	GradNorm     float64
}

func (e *HealthError) Error() string {
	return fmt.Sprintf("train: health violation %s at epoch %d batch %d (loss=%g, grad_norm=%g)",
		e.Kind, e.Epoch, e.Batch, e.Loss, e.GradNorm)
}

// SetHealth installs the numerical-health monitor; call before training.
func (t *Trainer) SetHealth(h HealthConfig) {
	h.fillDefaults()
	t.health = h
	t.resetHealthWindow()
}

func (t *Trainer) resetHealthWindow() {
	t.healthWin = t.healthWin[:0]
	t.healthSum = 0
}

// checkLoss vets one batch's loss. It runs before the loss enters the
// trailing window, so a spike is measured against healthy history only.
func (t *Trainer) checkLoss(loss float64, batch int) *HealthError {
	if !t.health.Enabled {
		return nil
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.countHealth("train_health_nonfinite_loss_total")
		return &HealthError{Epoch: t.epoch, Batch: batch, Kind: HealthNonFiniteLoss, Loss: loss}
	}
	if t.health.SpikeFactor > 1 && len(t.healthWin) >= t.health.SpikeWindow {
		mean := t.healthSum / float64(len(t.healthWin))
		if mean > 1e-12 && loss > t.health.SpikeFactor*mean {
			t.countHealth("train_health_loss_spike_total")
			return &HealthError{Epoch: t.epoch, Batch: batch, Kind: HealthLossSpike, Loss: loss}
		}
	}
	t.healthSum += loss
	t.healthWin = append(t.healthWin, loss)
	if len(t.healthWin) > t.health.SpikeWindow {
		t.healthSum -= t.healthWin[0]
		t.healthWin = t.healthWin[1:]
	}
	return nil
}

// checkGrad vets the post-backward gradient norm. A non-nil return means the
// caller must skip the optimizer step (keeping the weights finite).
func (t *Trainer) checkGrad(batch int, loss float64) *HealthError {
	if !t.health.Enabled {
		return nil
	}
	norm := t.opt.GradNorm()
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		t.countHealth("train_health_nonfinite_grad_total")
		return &HealthError{Epoch: t.epoch, Batch: batch, Kind: HealthNonFiniteGrad, Loss: loss, GradNorm: norm}
	}
	if t.health.MaxGradNorm > 0 && norm > t.health.MaxGradNorm {
		t.countHealth("train_health_exploding_grad_total")
		return &HealthError{Epoch: t.epoch, Batch: batch, Kind: HealthExplodingGrad, Loss: loss, GradNorm: norm}
	}
	return nil
}

func (t *Trainer) countHealth(metric string) {
	if t.cfg.Obs != nil {
		t.cfg.Obs.Counter(metric).Inc()
	}
}

// poisonGrad writes NaN into the first live parameter gradient — the
// faultinject.PointTrainNaNGrad payload.
func (t *Trainer) poisonGrad() {
	for _, p := range t.checkpointParams() {
		if g := p.T.Grad; g != nil && len(g.Data) > 0 {
			g.Data[0] = float32(math.NaN())
			return
		}
	}
}
