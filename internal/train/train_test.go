package train

import (
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/device"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
)

func trainValData(t testing.TB) (*graph.Dataset, *graph.Dataset, *graph.Dataset) {
	t.Helper()
	full := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 61, FeatDimOverride: 8, MinNodes: 96, MinEvents: 900})
	tr, val := full.Split(0.8)
	return full, tr, val
}

func newTrainer(t testing.TB, modelName string, sched batching.Scheduler, full, tr, val *graph.Dataset) *Trainer {
	t.Helper()
	m := models.MustNew(modelName, full, 16, 4, 5)
	tt, err := NewTrainer(Config{Model: m, Sched: sched, Data: tr, Val: val, LR: 2e-3, ValBatch: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestTrainingReducesLoss(t *testing.T) {
	full, tr, val := trainValData(t)
	sched := batching.NewFixed("TGL", tr.NumEvents(), 60)
	trainer := newTrainer(t, "TGN", sched, full, tr, val)
	epochs := trainer.Train(6)
	first, last := epochs[0].Loss, epochs[len(epochs)-1].Loss
	if math.IsNaN(last) || last >= first {
		t.Fatalf("training did not improve: %.4f → %.4f", first, last)
	}
	// A learned link predictor must beat chance (BCE ln2 ≈ 0.693) on
	// training loss by the last epoch.
	if last > 0.69 {
		t.Fatalf("final training loss %.4f not below chance", last)
	}
}

func TestValidationLossFinite(t *testing.T) {
	full, tr, val := trainValData(t)
	sched := batching.NewFixed("TGL", tr.NumEvents(), 60)
	trainer := newTrainer(t, "JODIE", sched, full, tr, val)
	trainer.Train(3)
	v := trainer.Validate()
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("validation loss %v", v)
	}
}

func TestAllModelsTrainUnderAllSchedulers(t *testing.T) {
	full, tr, val := trainValData(t)
	scheds := func() []batching.Scheduler {
		return []batching.Scheduler{
			batching.NewFixed("TGL", tr.NumEvents(), 80),
			batching.NewETC(tr.Events, 80),
			batching.NewNeutronStream(tr.Events, 80),
			core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 80, Workers: 2, Seed: 1}),
		}
	}
	for _, name := range models.Names {
		for _, sched := range scheds() {
			trainer := newTrainer(t, name, sched, full, tr, val)
			st := trainer.TrainEpoch()
			if math.IsNaN(st.Loss) || st.Loss <= 0 {
				t.Fatalf("%s under %s: loss %v", name, sched.Name(), st.Loss)
			}
			if st.Batches == 0 || st.MeanBatchSize <= 0 {
				t.Fatalf("%s under %s: no batches", name, sched.Name())
			}
		}
	}
}

func TestCascadeGrowsBatchesDuringRealTraining(t *testing.T) {
	full, tr, val := trainValData(t)
	const base = 50
	cascade := core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: base, Workers: 2, Seed: 1})
	trainer := newTrainer(t, "TGN", cascade, full, tr, val)
	st := trainer.TrainEpoch()
	if st.MeanBatchSize <= base {
		t.Fatalf("Cascade mean batch %.1f not above base %d", st.MeanBatchSize, base)
	}
	if st.MaxrEnd <= 0 {
		t.Fatal("Maxr not reported")
	}
}

func TestStableRatioReportedWithSGFilter(t *testing.T) {
	full, tr, val := trainValData(t)
	cascade := core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
	trainer := newTrainer(t, "TGN", cascade, full, tr, val)
	var last EpochStats
	for i := 0; i < 4; i++ {
		last = trainer.TrainEpoch()
	}
	if last.StableRatio < 0 || last.StableRatio > 1 {
		t.Fatalf("stable ratio %v", last.StableRatio)
	}
}

func TestDeviceAccounting(t *testing.T) {
	full, tr, val := trainValData(t)
	dev := device.A100TGL()
	m := models.MustNew("TGN", full, 16, 4, 5)
	trainer, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val, Device: &dev, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trainer.TrainEpoch()
	if st.DeviceTime <= 0 {
		t.Fatal("no simulated device time")
	}
	if st.MeanOccupancy <= 0 || st.MeanOccupancy > 1 {
		t.Fatalf("occupancy %v", st.MeanOccupancy)
	}
}

func TestLargerBatchesLowerSimulatedLatency(t *testing.T) {
	// The Fig. 2 mechanism: same events, bigger fixed batches → less
	// simulated device time (fewer launches, higher occupancy).
	full, tr, val := trainValData(t)
	run := func(bs int) EpochStats {
		dev := device.A100TGL()
		m := models.MustNew("TGN", full, 16, 4, 5)
		trainer, err := NewTrainer(Config{
			Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), bs),
			Data: tr, Val: val, Device: &dev, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return trainer.TrainEpoch()
	}
	small := run(20)
	large := run(200)
	if large.DeviceTime >= small.DeviceTime {
		t.Fatalf("large batches not faster on device: %v vs %v", large.DeviceTime, small.DeviceTime)
	}
	if large.MeanOccupancy <= small.MeanOccupancy {
		t.Fatalf("large batches not higher occupancy: %v vs %v", large.MeanOccupancy, small.MeanOccupancy)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewTrainer(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := &graph.Dataset{NumNodes: 2, Events: []graph.Event{{Src: 0, Dst: 0, Time: 1}}}
	full, tr, _ := trainValData(t)
	m := models.MustNew("TGN", full, 8, 4, 1)
	if _, err := NewTrainer(Config{Model: m, Sched: batching.NewFixed("TGL", 1, 1), Data: bad}); err == nil {
		t.Fatal("self-loop dataset accepted")
	}
	_ = tr
}

func TestEpochAggregates(t *testing.T) {
	epochs := []EpochStats{
		{Loss: 1, WallTime: 10, DeviceTime: 100},
		{Loss: 3, WallTime: 20, DeviceTime: 200},
	}
	if MeanLoss(epochs) != 2 {
		t.Fatal("MeanLoss")
	}
	if TotalWall(epochs) != 30 || TotalDevice(epochs) != 300 {
		t.Fatal("totals")
	}
	if MeanLoss(nil) != 0 {
		t.Fatal("MeanLoss nil")
	}
}

func TestValidateWithoutValData(t *testing.T) {
	full, tr, _ := trainValData(t)
	m := models.MustNew("JODIE", full, 8, 4, 1)
	trainer, err := NewTrainer(Config{Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50), Data: tr})
	if err != nil {
		t.Fatal(err)
	}
	if v := trainer.Validate(); v != 0 {
		t.Fatalf("validate without val data = %v", v)
	}
}

func TestTrainWithEarlyStop(t *testing.T) {
	full, tr, val := trainValData(t)
	trainer := newTrainer(t, "TGN", batching.NewFixed("TGL", tr.NumEvents(), 60), full, tr, val)
	epochs, stopped := trainer.TrainWithEarlyStop(30, 2)
	if len(epochs) == 0 {
		t.Fatal("no epochs")
	}
	if stopped && len(epochs) >= 30 {
		t.Fatal("claimed early stop after max epochs")
	}
	// With a tiny dataset and 30 epoch budget, the loss plateaus and the
	// run should terminate before exhausting the budget most of the time;
	// at minimum the mechanism must not produce more than maxEpochs.
	if len(epochs) > 30 {
		t.Fatalf("ran %d epochs", len(epochs))
	}
}

func TestShuffledSchedulerTrains(t *testing.T) {
	full, tr, val := trainValData(t)
	trainer := newTrainer(t, "JODIE", batching.NewShuffledFixed("TGL", tr.NumEvents(), 60, 3), full, tr, val)
	st := trainer.TrainEpoch()
	if st.Loss <= 0 || math.IsNaN(st.Loss) {
		t.Fatalf("loss %v", st.Loss)
	}
}

func TestOnBatchTrace(t *testing.T) {
	full, tr, val := trainValData(t)
	m := models.MustNew("JODIE", full, 8, 4, 1)
	var traces []BatchTrace
	dev := device.A100TGL()
	trainer, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val, Device: &dev, Seed: 9,
		OnBatch: func(bt BatchTrace) { traces = append(traces, bt) },
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trainer.TrainEpoch()
	if len(traces) != st.Batches {
		t.Fatalf("got %d traces for %d batches", len(traces), st.Batches)
	}
	cum := 0
	for i, bt := range traces {
		if bt.Epoch != 1 || bt.Index != i {
			t.Fatalf("trace %d: epoch %d index %d", i, bt.Epoch, bt.Index)
		}
		cum += bt.Size
		if bt.CumEvents != cum {
			t.Fatalf("trace %d: cum %d want %d", i, bt.CumEvents, cum)
		}
		if bt.DeviceTime <= 0 {
			t.Fatalf("trace %d: no device time", i)
		}
		if bt.Loss <= 0 || math.IsNaN(bt.Loss) {
			t.Fatalf("trace %d: loss %v", i, bt.Loss)
		}
	}
}

func TestValidateIsolatedRestoresState(t *testing.T) {
	full, tr, val := trainValData(t)
	for _, name := range models.Names {
		m := models.MustNew(name, full, 16, 4, 5)
		trainer, err := NewTrainer(Config{
			Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
			Data: tr, Val: val, ValBatch: 100, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		trainer.TrainEpoch()
		// Probe embeddings computed from the same snapshot before and after
		// isolated validation must be bit-identical (the probe itself
		// consumes RNG draws, so both probes start from the snapshot).
		probe := []int32{tr.Events[0].Src}
		ts := []float64{1e9}
		snap := m.Snapshot()
		m.BeginBatch()
		before := append([]float32(nil), m.Embed(probe, ts).Value.Data...)
		m.Restore(snap)
		v := trainer.ValidateIsolated()
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("%s: isolated val %v", name, v)
		}
		m.BeginBatch()
		after := m.Embed(probe, ts).Value.Data
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("%s: validation leaked into training state at %d", name, i)
			}
		}
	}
}

func TestTrainWithValidationFillsValLoss(t *testing.T) {
	full, tr, val := trainValData(t)
	trainer := newTrainer(t, "TGN", batching.NewFixed("TGL", tr.NumEvents(), 60), full, tr, val)
	epochs := trainer.TrainWithValidation(3)
	for i, e := range epochs {
		if e.ValLoss <= 0 || math.IsNaN(e.ValLoss) {
			t.Fatalf("epoch %d val loss %v", i, e.ValLoss)
		}
	}
}

func TestNewTrainerRejectsTooFewNodes(t *testing.T) {
	// Regression: negativeSample needs a node distinct from both endpoints;
	// with < 3 nodes it used to spin forever. NewTrainer now rejects such
	// datasets for link prediction.
	tiny := &graph.Dataset{Name: "tiny", NumNodes: 2, Events: []graph.Event{
		{Src: 0, Dst: 1, Time: 1, FeatIdx: -1},
		{Src: 1, Dst: 0, Time: 2, FeatIdx: -1},
	}}
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	m := models.MustNew("JODIE", tiny, 8, 4, 1)
	_, err := NewTrainer(Config{Model: m, Sched: batching.NewFixed("TGL", 2, 1), Data: tiny})
	if err == nil {
		t.Fatal("2-node link-prediction dataset accepted")
	}
}

func TestNegativeSampleTerminates(t *testing.T) {
	// Three nodes: the only valid negative for edge 0→1 is node 2, so the
	// bounded rejection loop must fall through to the deterministic scan
	// whenever the RNG streaks — and always terminate.
	three := &graph.Dataset{Name: "three", NumNodes: 3, Events: []graph.Event{
		{Src: 0, Dst: 1, Time: 1, FeatIdx: -1},
		{Src: 1, Dst: 2, Time: 2, FeatIdx: -1},
		{Src: 0, Dst: 2, Time: 3, FeatIdx: -1},
	}}
	m := models.MustNew("JODIE", three, 8, 4, 1)
	trainer, err := NewTrainer(Config{Model: m, Sched: batching.NewFixed("TGL", 3, 1), Data: three})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if n := trainer.negativeSample(three, three.Events[0]); n != 2 {
			t.Fatalf("draw %d: negative %d for edge 0→1", i, n)
		}
	}
	// Even a malformed 2-node call (bypassing NewTrainer's guard) must
	// terminate via the fallback instead of spinning.
	two := &graph.Dataset{NumNodes: 2}
	if n := trainer.negativeSample(two, graph.Event{Src: 0, Dst: 1}); n != 1 {
		t.Fatalf("2-node fallback returned %d, want the destination 1", n)
	}
}

func TestBatchCostEvaluatedOncePerBatch(t *testing.T) {
	// Regression: with OnBatch set, TrainEpoch used to run the device cost
	// model twice per batch. The device's obs call counter pins it to one.
	full, tr, val := trainValData(t)
	dev := device.A100TGL()
	dev.Obs = obs.NewRegistry()
	m := models.MustNew("JODIE", full, 8, 4, 1)
	trainer, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val, Device: &dev, Seed: 9,
		OnBatch: func(BatchTrace) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trainer.TrainEpoch()
	calls := dev.Obs.Counter("device_batch_cost_calls_total").Value()
	if calls != int64(st.Batches) {
		t.Fatalf("cost model evaluated %d times for %d batches", calls, st.Batches)
	}
}

func TestBatchTraceCarriesStageAndSchedulerSignals(t *testing.T) {
	full, tr, val := trainValData(t)
	cascade := core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
	dev := device.A100TGL()
	m := models.MustNew("TGN", full, 16, 4, 5)
	var traces []BatchTrace
	trainer, err := NewTrainer(Config{
		Model: m, Sched: cascade, Data: tr, Val: val, Device: &dev, Seed: 9,
		OnBatch: func(bt BatchTrace) { traces = append(traces, bt) },
	})
	if err != nil {
		t.Fatal(err)
	}
	trainer.TrainEpoch()
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	for i, bt := range traces {
		if bt.EmbedTime <= 0 || bt.BackwardTime <= 0 {
			t.Fatalf("trace %d: stage timings %+v", i, bt)
		}
		if bt.Maxr <= 0 {
			t.Fatalf("trace %d: Maxr %d not reported for Cascade", i, bt.Maxr)
		}
		if bt.StableRatio < 0 || bt.StableRatio > 1 {
			t.Fatalf("trace %d: stable ratio %v", i, bt.StableRatio)
		}
		if bt.TapeKernels <= 0 || bt.TapeFlops <= 0 {
			t.Fatalf("trace %d: tape stats %+v", i, bt)
		}
		// Once the arena is warm a batch may be served entirely from the
		// free list (zero fresh heap allocations), but every batch must
		// draw storage from somewhere: pool hits + misses > 0.
		if bt.AllocMatrices < 0 || bt.AllocFloats < 0 {
			t.Fatalf("trace %d: alloc stats %+v", i, bt)
		}
		if bt.PoolHits+bt.PoolMisses <= 0 {
			t.Fatalf("trace %d: pool stats %+v", i, bt)
		}
		if bt.PoolHits > 0 && bt.PoolFloatsRecycled <= 0 {
			t.Fatalf("trace %d: pool hits without recycled floats %+v", i, bt)
		}
		if bt.Occupancy <= 0 || bt.Occupancy > 1 {
			t.Fatalf("trace %d: occupancy %v", i, bt.Occupancy)
		}
	}
}

func TestTrainObsMetrics(t *testing.T) {
	full, tr, val := trainValData(t)
	r := obs.NewRegistry()
	m := models.MustNew("JODIE", full, 8, 4, 1)
	trainer, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val, Seed: 9, Obs: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trainer.TrainEpoch()
	if got := r.Counter("train_batches_total").Value(); got != int64(st.Batches) {
		t.Fatalf("train_batches_total = %d, want %d", got, st.Batches)
	}
	if got := r.Counter("train_events_total").Value(); got != int64(tr.NumEvents()) {
		t.Fatalf("train_events_total = %d, want %d", got, tr.NumEvents())
	}
	for _, h := range []string{"train_batch_loss", "train_batch_size", "train_begin_seconds", "train_embed_seconds", "train_backward_seconds", "train_end_seconds"} {
		if got := r.Histogram(h).Count(); got != int64(st.Batches) {
			t.Fatalf("%s count = %d, want %d", h, got, st.Batches)
		}
	}
	if r.Counter("train_tape_kernels_total").Value() <= 0 {
		t.Fatal("no tape kernels recorded")
	}
	if r.Counter("train_alloc_matrices_total").Value() <= 0 {
		t.Fatal("no allocations recorded")
	}
}
