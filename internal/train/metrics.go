package train

import (
	"math"
	"sort"

	"github.com/cascade-ml/cascade/internal/graph"
)

// Metrics are the standard link-prediction quality measures alongside the
// BCE loss the paper reports: ROC-AUC and Average Precision over
// positive-vs-negative edge scores.
type Metrics struct {
	Loss float64
	AUC  float64
	AP   float64
	// Events is how many positive edges were scored.
	Events int
}

// rocAUC computes the area under the ROC curve for scores with binary
// labels, handling ties by the probabilistic definition
// P(score⁺ > score⁻) + ½·P(score⁺ = score⁻) via the rank-sum formulation.
func rocAUC(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Average ranks over tie groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	var posRankSum float64
	var nPos int
	for i, lab := range labels {
		if lab {
			posRankSum += ranks[i]
			nPos++
		}
	}
	nNeg := n - nPos
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	u := posRankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// averagePrecision computes AP = Σ P(k)·rel(k) / #positives over the
// score-descending ranking.
func averagePrecision(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var hits int
	var sum float64
	for k, i := range idx {
		if labels[i] {
			hits++
			sum += float64(hits) / float64(k+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(hits)
}

// ValidateMetrics scores the validation suffix like Validate but also
// returns ROC-AUC and Average Precision of positive vs corrupted edges.
func (t *Trainer) ValidateMetrics() Metrics {
	if t.cfg.Val == nil || t.cfg.Val.NumEvents() == 0 {
		return Metrics{}
	}
	var m Metrics
	var lossSum float64
	var scores []float64
	var labels []bool
	n := t.cfg.Val.NumEvents()
	for lo := 0; lo < n; lo += t.cfg.ValBatch {
		hi := lo + t.cfg.ValBatch
		if hi > n {
			hi = n
		}
		events := t.cfg.Val.Events[lo:hi]
		loss, batchScores := t.scoreBatch(t.cfg.Val, events)
		lossSum += loss * float64(len(events))
		b := len(events)
		for i := 0; i < 2*b; i++ {
			scores = append(scores, float64(batchScores[i]))
			labels = append(labels, i < b)
		}
		m.Events += b
	}
	m.Loss = lossSum / float64(m.Events)
	m.AUC = rocAUC(scores, labels)
	m.AP = averagePrecision(scores, labels)
	return m
}

// scoreBatch runs the prediction step without learning and returns the loss
// plus a copy of the raw scores (2B: positives then negatives), advancing
// model state like a normal validation step. The copy is taken before
// finishStep recycles the batch's tape into the arena.
func (t *Trainer) scoreBatch(ds *graph.Dataset, events []graph.Event) (float64, []float32) {
	prep := t.prepareLink(ds, events)
	lossT, logits, upd, _, _ := t.forwardPrepared(prep, nil)
	var scores []float32
	if logits != nil {
		scores = append([]float32(nil), logits.Value.Data...)
	}
	loss := t.finishStep(lossT, upd, events, false)
	if math.IsNaN(loss) {
		return math.NaN(), scores
	}
	return loss, scores
}
