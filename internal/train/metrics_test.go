package train

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/models"
)

func TestROCAUCKnownValues(t *testing.T) {
	// Perfect separation → 1.
	if auc := rocAUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false}); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	// Perfectly wrong → 0.
	if auc := rocAUC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{true, true, false, false}); auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
	// All scores tied → 0.5 by the probabilistic tie convention.
	if auc := rocAUC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{true, false, true, false}); auc != 0.5 {
		t.Fatalf("tied AUC = %v", auc)
	}
	// Degenerate label sets → 0.
	if auc := rocAUC([]float64{1, 2}, []bool{true, true}); auc != 0 {
		t.Fatalf("single-class AUC = %v", auc)
	}
	if rocAUC(nil, nil) != 0 {
		t.Fatal("empty AUC")
	}
}

func TestROCAUCHandComputed(t *testing.T) {
	// scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0) →
	// 3 of 4 → 0.75.
	auc := rocAUC([]float64{3, 1, 2, 0}, []bool{true, true, false, false})
	if math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", auc)
	}
}

func TestAveragePrecisionKnownValues(t *testing.T) {
	// Ranking (desc): pos, neg, pos, neg → AP = (1/1 + 2/3)/2 = 5/6.
	ap := averagePrecision([]float64{4, 3, 2, 1}, []bool{true, false, true, false})
	if math.Abs(ap-5.0/6) > 1e-12 {
		t.Fatalf("AP = %v, want 5/6", ap)
	}
	if averagePrecision([]float64{1, 2}, []bool{false, false}) != 0 {
		t.Fatal("no-positives AP")
	}
	if averagePrecision(nil, nil) != 0 {
		t.Fatal("empty AP")
	}
}

// Property: AUC is in [0,1] and flipping all labels maps a→1−a (when both
// classes are present and there are no ties complicating the complement).
func TestROCAUCProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			scores = append(scores, v)
		}
		if len(scores) < 4 {
			return true
		}
		labels := make([]bool, len(scores))
		for i := range labels {
			labels[i] = i%2 == 0
		}
		a := rocAUC(scores, labels)
		if a < 0 || a > 1 {
			return false
		}
		flipped := make([]bool, len(labels))
		for i := range labels {
			flipped[i] = !labels[i]
		}
		b := rocAUC(scores, flipped)
		return math.Abs(a+b-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMetricsEndToEnd(t *testing.T) {
	full, tr, val := trainValData(t)
	sched := batching.NewFixed("TGL", tr.NumEvents(), 60)
	m := models.MustNew("TGN", full, 16, 4, 5)
	trainer, err := NewTrainer(Config{Model: m, Sched: sched, Data: tr, Val: val, ValBatch: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(4)
	met := trainer.ValidateMetrics()
	if met.Events != val.NumEvents() {
		t.Fatalf("scored %d of %d events", met.Events, val.NumEvents())
	}
	if met.AUC <= 0.5 {
		t.Fatalf("trained model AUC %.3f not above chance", met.AUC)
	}
	if met.AP <= 0.5 {
		t.Fatalf("trained model AP %.3f not above chance", met.AP)
	}
	if met.Loss <= 0 || math.IsNaN(met.Loss) {
		t.Fatalf("loss %v", met.Loss)
	}
}

func TestValidateMetricsWithoutVal(t *testing.T) {
	full, tr, _ := trainValData(t)
	m := models.MustNew("JODIE", full, 8, 4, 1)
	trainer, err := NewTrainer(Config{Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50), Data: tr})
	if err != nil {
		t.Fatal(err)
	}
	if met := trainer.ValidateMetrics(); met.Events != 0 {
		t.Fatalf("metrics without val data: %+v", met)
	}
}
