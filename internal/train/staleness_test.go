package train

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// runStale trains two epochs under the given staleness budget and prefetch
// mode, returning per-batch losses, the final validation loss, and the
// final epoch's stats.
func runStale(t *testing.T, model string, sched batching.Scheduler, full, tr, val *graph.Dataset, staleness int, disablePrefetch bool) ([]float64, float64, EpochStats) {
	t.Helper()
	m := models.MustNew(model, full, 16, 4, 5)
	var losses []float64
	tt, err := NewTrainer(Config{
		Model: m, Sched: sched, Data: tr, Val: val,
		LR: 2e-3, ValBatch: 100, Seed: 9,
		Staleness:       staleness,
		DisablePrefetch: disablePrefetch,
		OnBatch:         func(bt BatchTrace) { losses = append(losses, bt.Loss) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sts := tt.Train(2)
	return losses, tt.Validate(), sts[len(sts)-1]
}

// TestStalenessZeroMatchesSerial pins the tentpole's exactness contract on
// every Table 1 model: Staleness=0 must be bitwise-identical to the
// serial-equivalent pipeline — same per-batch losses, same validation loss,
// with and without the prefetch pipeline. This is the guard that the
// staleness machinery (ledger routing, partial-apply refactor, monotonic
// timestamp clamp, copy-safe mailbox reads) left the default path's
// numerics untouched.
func TestStalenessZeroMatchesSerial(t *testing.T) {
	full, tr, val := trainValData(t)
	for _, name := range models.Names {
		t.Run(name, func(t *testing.T) {
			mkSched := func() batching.Scheduler { return batching.NewFixed("TGL", tr.NumEvents(), 60) }
			serial, serialVal, _ := runStale(t, name, mkSched(), full, tr, val, 0, true)
			piped, pipedVal, st := runStale(t, name, mkSched(), full, tr, val, 0, false)
			if len(serial) != len(piped) {
				t.Fatalf("batch counts differ: %d vs %d", len(serial), len(piped))
			}
			for i := range serial {
				if serial[i] != piped[i] {
					t.Fatalf("batch %d loss diverged: %v vs %v", i, serial[i], piped[i])
				}
			}
			if serialVal != pipedVal {
				t.Fatalf("validation loss diverged: %v vs %v", serialVal, pipedVal)
			}
			if st.StaleServed != 0 || st.StaleAppliedRounds != 0 || st.StaleMax != 0 {
				t.Fatalf("s=0 reported staleness activity: %+v", st)
			}
		})
	}
}

// TestStaleSmoke is the `make stalesmoke` gate: a tiny s=0 vs s=2
// equivalence/divergence check. s=0 twice must agree bitwise; s=2 must
// actually defer (stale-served reads observed, budget respected, losses
// finite) and — because deferred memories change the forward pass — diverge
// from the exact schedule.
func TestStaleSmoke(t *testing.T) {
	full, tr, val := trainValData(t)
	mkSched := func() batching.Scheduler { return batching.NewFixed("TGL", tr.NumEvents(), 60) }
	exactA, valA, _ := runStale(t, "TGN", mkSched(), full, tr, val, 0, false)
	exactB, valB, _ := runStale(t, "TGN", mkSched(), full, tr, val, 0, false)
	if valA != valB {
		t.Fatalf("s=0 runs disagree: %v vs %v", valA, valB)
	}
	for i := range exactA {
		if exactA[i] != exactB[i] {
			t.Fatalf("s=0 runs disagree at batch %d", i)
		}
	}
	stale, staleVal, st := runStale(t, "TGN", mkSched(), full, tr, val, 2, false)
	if len(stale) != len(exactA) {
		t.Fatalf("batch counts differ: %d vs %d", len(stale), len(exactA))
	}
	for i, l := range stale {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite loss at batch %d under s=2", i)
		}
	}
	if math.IsNaN(staleVal) || math.IsInf(staleVal, 0) {
		t.Fatalf("non-finite validation loss under s=2: %v", staleVal)
	}
	if st.StaleServed == 0 {
		t.Fatal("s=2 run never served a stale read")
	}
	if st.StaleMax > 2 {
		t.Fatalf("served staleness %d exceeds budget 2", st.StaleMax)
	}
	diverged := false
	for i := range stale {
		if stale[i] != exactA[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("s=2 losses identical to s=0: staleness had no effect")
	}
}

// TestStalenessBudgetEnforced sweeps budgets and pins the ledger invariant:
// no anchor read is ever served more than s rounds behind, stale serves do
// happen, and deferral actually shrinks the applied-update volume relative
// to the exact schedule. The adaptive Cascade scheduler is included so the
// budget holds under feedback-driven batch boundaries too.
func TestStalenessBudgetEnforced(t *testing.T) {
	full, tr, val := trainValData(t)
	for _, tc := range []struct {
		name  string
		sched func() batching.Scheduler
	}{
		{"fixed", func() batching.Scheduler { return batching.NewFixed("TGL", tr.NumEvents(), 60) }},
		{"cascade", func() batching.Scheduler {
			return core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
		}},
	} {
		for _, s := range []int{1, 2, 4} {
			_, _, st := runStale(t, "TGN", tc.sched(), full, tr, val, s, false)
			if st.StaleMax > s {
				t.Fatalf("%s s=%d: served staleness %d exceeds budget", tc.name, s, st.StaleMax)
			}
			if st.StaleServed == 0 {
				t.Fatalf("%s s=%d: no stale reads served", tc.name, s)
			}
			if st.StaleAppliedRounds == 0 {
				t.Fatalf("%s s=%d: no deferred rounds were ever applied", tc.name, s)
			}
		}
	}
}

// stalenessFinalState reduces a trainer to one comparable blob (weights,
// optimizer moments, stream state, RNG positions, scheduler state, the
// staleness ledger) plus the validation loss.
func stalenessFinalState(t *testing.T, tr *Trainer) ([]byte, float64) {
	t.Helper()
	c, err := tr.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr.Validate()
}

// TestStalenessKillAndResume proves checkpoints stay safe boundaries under
// s>0: a run aborted mid-epoch and resumed by a fresh trainer from its last
// mid-epoch checkpoint — staleness ledger included — must end with
// bitwise-identical full state and validation loss. If the ledger were
// flushed or dropped at the boundary, the resumed run's apply schedule
// would shift and the final states would differ.
func TestStalenessKillAndResume(t *testing.T) {
	full, tr, val := trainValData(t)
	const budget = 2
	newStaleTrainer := func() *Trainer {
		m := models.MustNew("TGN", full, 16, 4, 5)
		sched := core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
		tt, err := NewTrainer(Config{
			Model: m, Sched: sched, Data: tr, Val: val,
			LR: 2e-3, ValBatch: 100, Seed: 9, Staleness: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tt
	}

	// Baseline: two uninterrupted epochs at the same checkpoint cadence.
	base := newStaleTrainer()
	base.SetCheckpointCadence(3, func(*CheckpointState) error { return nil })
	for e := 0; e < 2; e++ {
		if _, err := base.TrainEpochChecked(); err != nil {
			t.Fatal(err)
		}
	}
	wantBlob, wantVal := stalenessFinalState(t, base)

	// Interrupted: abort epoch 1 after batch 8, keep the last checkpoint.
	killed := newStaleTrainer()
	var last *CheckpointState
	killed.SetCheckpointCadence(3, func(c *CheckpointState) error { last = c; return nil })
	inj := faultinject.New()
	inj.Arm(faultinject.PointTrainAbort, 8)
	killed.SetInjector(inj)
	if _, err := killed.TrainEpochChecked(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("abort did not fire: %v", err)
	}
	if last == nil {
		t.Fatal("no mid-epoch checkpoint was captured before the abort")
	}
	if last.Ledger == nil {
		t.Fatal("s>0 checkpoint carries no staleness ledger")
	}

	// Resume on a fresh trainer and finish the schedule.
	resumed := newStaleTrainer()
	resumed.SetCheckpointCadence(3, func(*CheckpointState) error { return nil })
	if err := resumed.RestoreCheckpoint(last); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.TrainEpochChecked(); err != nil { // finish epoch 1
		t.Fatal(err)
	}
	if _, err := resumed.TrainEpochChecked(); err != nil { // epoch 2
		t.Fatal(err)
	}
	gotBlob, gotVal := stalenessFinalState(t, resumed)
	if gotVal != wantVal {
		t.Fatalf("validation loss diverged after resume: %v vs %v", gotVal, wantVal)
	}
	if !bytes.Equal(gotBlob, wantBlob) {
		t.Fatal("final state diverged after kill-and-resume under staleness")
	}
}
