package train

import (
	"github.com/cascade-ml/cascade/internal/graph"
)

// Node classification (the second CTDG task of Eq. 1, e.g. MOOC student
// drop-out): per event, the model embeds the source node at the event time
// and a classifier head predicts the event's binary label. The three
// training steps of Fig. 1 are unchanged — only step 1's prediction target
// differs from link prediction.

// stepClassOn executes one node-classification batch serially and returns
// the loss plus a copy of the per-event scores (raw logits). The copy is
// taken before finishStep recycles the batch's tape into the arena.
func (t *Trainer) stepClassOn(events []graph.Event, labels []uint8, learn bool) (float64, []float32) {
	prep := t.prepareClass(events, labels)
	lossT, logits, upd, _, _ := t.forwardPrepared(prep, nil)
	var scores []float32
	if logits != nil {
		scores = append([]float32(nil), logits.Value.Data[:len(events)]...)
	}
	loss := t.finishStep(lossT, upd, events, learn)
	return loss, scores
}

// ValidateClass scores the validation suffix of a node-classification run,
// returning loss, ROC-AUC and AP over the event labels.
func (t *Trainer) ValidateClass() Metrics {
	if t.cfg.Task != TaskNodeClassification {
		panic("train: ValidateClass on a link-prediction trainer")
	}
	if t.cfg.Val == nil || t.cfg.Val.NumEvents() == 0 {
		return Metrics{}
	}
	var m Metrics
	var lossSum float64
	var scores []float64
	var labels []bool
	n := t.cfg.Val.NumEvents()
	for lo := 0; lo < n; lo += t.cfg.ValBatch {
		hi := lo + t.cfg.ValBatch
		if hi > n {
			hi = n
		}
		events := t.cfg.Val.Events[lo:hi]
		evLabels := t.cfg.Val.Labels[lo:hi]
		loss, batchScores := t.stepClassOn(events, evLabels, false)
		lossSum += loss * float64(len(events))
		for i := range events {
			scores = append(scores, float64(batchScores[i]))
			labels = append(labels, evLabels[i] == 1)
		}
		m.Events += len(events)
	}
	m.Loss = lossSum / float64(m.Events)
	m.AUC = rocAUC(scores, labels)
	m.AP = averagePrecision(scores, labels)
	return m
}
