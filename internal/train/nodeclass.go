package train

import (
	"time"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// Node classification (the second CTDG task of Eq. 1, e.g. MOOC student
// drop-out): per event, the model embeds the source node at the event time
// and a classifier head predicts the event's binary label. The three
// training steps of Fig. 1 are unchanged — only step 1's prediction target
// differs from link prediction.

// stepClassOn executes one node-classification batch.
func (t *Trainer) stepClassOn(ds *graph.Dataset, events []graph.Event, labels []uint8, learn bool) (float64, *models.MemoryUpdate, tensor.TapeStats, stageTiming, *tensor.Tensor) {
	var tm stageTiming
	model := t.cfg.Model
	mark := time.Now()
	upd := model.BeginBatch()
	tm.Begin = time.Since(mark)
	b := len(events)
	if b == 0 {
		return 0, upd, tensor.TapeStats{}, tm, nil
	}
	mark = time.Now()
	nodes := make([]int32, b)
	ts := make([]float64, b)
	targets := tensor.NewMatrix(b, 1)
	for i, e := range events {
		nodes[i] = e.Src
		ts[i] = e.Time
		targets.Data[i] = float32(labels[i])
	}
	h := model.Embed(nodes, ts)
	logits := t.predictor.Forward(h)
	loss := tensor.BCEWithLogitsT(logits, tensor.Const(targets))
	tape := tensor.StatsOf(loss)
	tm.Embed = time.Since(mark)
	if learn {
		mark = time.Now()
		t.opt.ZeroGrad()
		loss.Backward()
		t.opt.Step()
		tm.Backward = time.Since(mark)
	}
	mark = time.Now()
	model.EndBatch(events)
	tm.End = time.Since(mark)
	return float64(loss.Item()), upd, tape, tm, logits
}

// ValidateClass scores the validation suffix of a node-classification run,
// returning loss, ROC-AUC and AP over the event labels.
func (t *Trainer) ValidateClass() Metrics {
	if t.cfg.Task != TaskNodeClassification {
		panic("train: ValidateClass on a link-prediction trainer")
	}
	if t.cfg.Val == nil || t.cfg.Val.NumEvents() == 0 {
		return Metrics{}
	}
	var m Metrics
	var lossSum float64
	var scores []float64
	var labels []bool
	n := t.cfg.Val.NumEvents()
	for lo := 0; lo < n; lo += t.cfg.ValBatch {
		hi := lo + t.cfg.ValBatch
		if hi > n {
			hi = n
		}
		events := t.cfg.Val.Events[lo:hi]
		evLabels := t.cfg.Val.Labels[lo:hi]
		loss, _, _, _, logits := t.stepClassOn(t.cfg.Val, events, evLabels, false)
		lossSum += loss * float64(len(events))
		for i := range events {
			scores = append(scores, float64(logits.Value.Data[i]))
			labels = append(labels, evLabels[i] == 1)
		}
		m.Events += len(events)
	}
	m.Loss = lossSum / float64(m.Events)
	m.AUC = rocAUC(scores, labels)
	m.AP = averagePrecision(scores, labels)
	return m
}
