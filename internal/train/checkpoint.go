package train

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/memstore"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// countingSource wraps the trainer's deterministic rand source and counts
// draws, making the RNG position serializable: a checkpoint records the draw
// count, and restore replays that many draws from a fresh seed. Each Int63 or
// Uint64 advances the underlying rngSource by exactly one step, so replaying
// with Uint64 reproduces the state regardless of which methods originally
// consumed the stream. Not itself goroutine-safe — the trainer's prefetch
// pipeline already hands the rng to exactly one goroutine at a time.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) {
	c.src = rand.NewSource(seed).(rand.Source64)
	c.draws = 0
}

// seekTo re-seeds and discards draws until the stream position matches a
// checkpointed count.
func (c *countingSource) seekTo(seed int64, draws uint64) {
	c.Seed(seed)
	for c.draws < draws {
		c.Uint64()
	}
}

// CheckpointState is the trainer's full training state at a safe batch
// boundary — everything needed to resume bitwise-identically: weights (model
// + predictor head), optimizer moments, the model's stream state (node
// memories, temporal adjacency, pending messages, sampling RNG), the
// scheduler's walk/adaptation state, the trainer RNG position, and the
// epoch-in-progress accumulators. internal/resilience wraps it in a
// checksummed file format; every field is exported for gob.
type CheckpointState struct {
	// Epoch is the 1-based epoch the state belongs to. Batch counts batches
	// completed within it; -1 marks an epoch-boundary checkpoint (the epoch
	// finished, the next TrainEpoch starts fresh).
	Epoch int
	Batch int
	// RNGDraws is the trainer RNG's absolute stream position since Seed.
	RNGDraws uint64
	// Weights is an nn.SaveParams blob over model + predictor parameters.
	Weights []byte
	// Optimizer carries Adam's moments, step count and (possibly backed-off)
	// learning rate.
	Optimizer *nn.AdamCheckpoint
	// Stream is the model's stream state.
	Stream *models.StreamCheckpoint
	// SchedName guards against resuming under a different batching policy;
	// Sched is the scheduler's batching.Checkpointable payload (nil when the
	// scheduler does not support mid-epoch state capture).
	SchedName string
	Sched     []byte
	// Epoch-in-progress accumulators (meaningless when Batch == -1).
	LossSum      float64
	EventSum     int
	OccSum       float64
	DeviceTimeNs int64
	// Ledger is the bounded-staleness ledger state (nil when the trainer
	// runs with Staleness == 0). It is serialized rather than flushed at
	// the boundary: a restored trainer owes the deferred nodes exactly the
	// rounds the original did, so the resumed apply schedule — and with it
	// every number downstream — matches the uninterrupted run
	// (TestStalenessKillAndResume).
	Ledger *memstore.LedgerCheckpoint
}

// checkpointParams is the trainer's full parameter list with the predictor
// head namespaced (mirroring the facade's SaveModel convention — model and
// head share layer names otherwise) and repeated in-model layer names
// disambiguated (TGAT/DySAT stack identical layers).
func (t *Trainer) checkpointParams() []nn.Param {
	head := t.predictor.Params()
	prefixed := make([]nn.Param, len(head))
	for i, p := range head {
		prefixed[i] = nn.Param{Name: "predictor." + p.Name, T: p.T}
	}
	return nn.UniqueNames(append(t.cfg.Model.Params(), prefixed...))
}

// CaptureCheckpoint snapshots the full training state at an epoch boundary
// (between TrainEpoch calls). Mid-epoch snapshots are produced by the
// checkpoint hook (SetCheckpointCadence) at safe batch boundaries instead.
func (t *Trainer) CaptureCheckpoint() (*CheckpointState, error) {
	return t.capture(-1, 0, 0, 0, 0)
}

func (t *Trainer) capture(batch int, lossSum float64, eventSum int, occSum float64, deviceTime time.Duration) (*CheckpointState, error) {
	var w bytes.Buffer
	if err := nn.SaveParams(&w, t.checkpointParams()); err != nil {
		return nil, fmt.Errorf("train: serializing weights: %w", err)
	}
	stream, err := models.CheckpointStream(t.cfg.Model)
	if err != nil {
		return nil, err
	}
	c := &CheckpointState{
		Epoch:        t.epoch,
		Batch:        batch,
		RNGDraws:     t.rngSrc.draws,
		Weights:      w.Bytes(),
		Optimizer:    t.opt.Checkpoint(),
		Stream:       stream,
		SchedName:    t.cfg.Sched.Name(),
		LossSum:      lossSum,
		EventSum:     eventSum,
		OccSum:       occSum,
		DeviceTimeNs: int64(deviceTime),
	}
	if ck, ok := t.cfg.Sched.(batching.Checkpointable); ok {
		if c.Sched, err = ck.CheckpointState(); err != nil {
			return nil, fmt.Errorf("train: serializing scheduler state: %w", err)
		}
	}
	if t.ledger != nil {
		c.Ledger = t.ledger.Checkpoint()
	}
	if t.cfg.Obs != nil {
		t.cfg.Obs.Counter("train_checkpoint_captures_total").Inc()
	}
	return c, nil
}

// RestoreCheckpoint reinstates a CheckpointState into a trainer built with
// the same Config (model kind and dimensions, scheduler policy, dataset,
// seed). A mid-epoch state (Batch ≥ 0) arms the next TrainEpoch call to
// continue that epoch from the captured boundary instead of resetting.
func (t *Trainer) RestoreCheckpoint(c *CheckpointState) error {
	if c == nil {
		return fmt.Errorf("train: nil checkpoint")
	}
	if c.SchedName != t.cfg.Sched.Name() {
		return fmt.Errorf("train: checkpoint was taken under scheduler %q, trainer runs %q", c.SchedName, t.cfg.Sched.Name())
	}
	if err := nn.LoadParams(bytes.NewReader(c.Weights), t.checkpointParams()); err != nil {
		return fmt.Errorf("train: restoring weights: %w", err)
	}
	if err := t.opt.RestoreCheckpoint(c.Optimizer); err != nil {
		return err
	}
	if err := models.RestoreStream(t.cfg.Model, c.Stream); err != nil {
		return err
	}
	if c.Sched != nil {
		ck, ok := t.cfg.Sched.(batching.Checkpointable)
		if !ok {
			return fmt.Errorf("train: checkpoint carries %s scheduler state but the scheduler cannot restore it", c.SchedName)
		}
		if err := ck.RestoreCheckpointState(c.Sched); err != nil {
			return err
		}
	}
	if t.ledger != nil {
		if c.Ledger != nil {
			if err := t.ledger.RestoreCheckpoint(c.Ledger); err != nil {
				return err
			}
		} else {
			// The checkpoint was taken without a staleness budget: nothing
			// was deferred at the boundary, so the ledger starts clean.
			t.ledger.Reset()
		}
	}
	t.rngSrc.seekTo(t.cfg.Seed, c.RNGDraws)
	t.epoch = c.Epoch
	t.resetHealthWindow()
	if c.Batch >= 0 {
		t.resume = &resumePoint{
			batches:    c.Batch,
			lossSum:    c.LossSum,
			eventSum:   c.EventSum,
			occSum:     c.OccSum,
			deviceTime: time.Duration(c.DeviceTimeNs),
		}
	} else {
		t.resume = nil
	}
	if t.cfg.Obs != nil {
		t.cfg.Obs.Counter("train_checkpoint_restores_total").Inc()
	}
	return nil
}

// AdoptAveraged installs the weights and optimizer moments from a peer's
// checkpoint, leaving stream, scheduler, and RNG state alone. It is the
// rejoin half of distributed recovery: an evicted replica adopts the fleet's
// averaged parameters, and because TrainEpoch resets node memories and the
// scheduler walk at every epoch start, the skipped state is rebuilt on the
// rejoiner's own shard the moment it trains again. Unlike RestoreCheckpoint
// it does not require matching scheduler policies — the checkpoint's stream
// and scheduler payloads belong to the peer's shard and are ignored.
func (t *Trainer) AdoptAveraged(c *CheckpointState) error {
	if c == nil {
		return fmt.Errorf("train: nil checkpoint")
	}
	if err := nn.LoadParams(bytes.NewReader(c.Weights), t.checkpointParams()); err != nil {
		return fmt.Errorf("train: adopting averaged weights: %w", err)
	}
	if err := t.opt.RestoreCheckpoint(c.Optimizer); err != nil {
		return err
	}
	t.epoch = c.Epoch
	t.resume = nil
	t.resetHealthWindow()
	if t.cfg.Obs != nil {
		t.cfg.Obs.Counter("train_checkpoint_adoptions_total").Inc()
	}
	return nil
}

// resumePoint carries a restored mid-epoch position into the next
// TrainEpoch call.
type resumePoint struct {
	batches    int
	lossSum    float64
	eventSum   int
	occSum     float64
	deviceTime time.Duration
}

// SetCheckpointCadence arranges for hook to receive a full-state checkpoint
// every everyBatches batches, taken at safe batch boundaries (optimizer
// stepped, messages generated, scheduler fed, tape freed, no prefetch in
// flight — the trainer serializes the pipeline at checkpoint boundaries,
// which is result-identical to the pipelined schedule). A hook error aborts
// the epoch; hooks that tolerate write failures should swallow them and
// return nil. Mid-epoch checkpoints additionally require the scheduler to
// implement batching.Checkpointable; otherwise the cadence is ignored and
// only epoch-boundary captures (CaptureCheckpoint) are possible.
// everyBatches ≤ 0 or a nil hook disables the cadence.
func (t *Trainer) SetCheckpointCadence(everyBatches int, hook func(*CheckpointState) error) {
	if everyBatches <= 0 || hook == nil {
		t.ckptEvery, t.ckptHook = 0, nil
		return
	}
	t.ckptEvery, t.ckptHook = everyBatches, hook
}

// SetInjector installs a fault injector (tests and chaos runs); nil disables
// injection.
func (t *Trainer) SetInjector(inj *faultinject.Injector) { t.inj = inj }

// Epoch returns the number of completed (or in-progress, during a call)
// TrainEpoch invocations, adjusted by checkpoint restores.
func (t *Trainer) Epoch() int { return t.epoch }

// Optimizer exposes the Adam instance (the resilience manager reads and
// backs off its learning rate across rollbacks).
func (t *Trainer) Optimizer() *nn.Adam { return t.opt }
