// Package train runs TGNN link-prediction training the way §2.3 / Figure 1
// describe: the scheduler cuts the event sequence into batches; per batch
// the trainer (1) embeds nodes with the pre-batch memories, predicts the
// batch's edges against negative samples, back-propagates a BCE loss and
// steps Adam; (2) generates messages from the batch's events; (3) updates
// node memories — with runtime feedback (loss, memory-update similarity)
// flowing back to adaptive schedulers.
package train

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/device"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/memstore"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/plan"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// Task selects the prediction objective (Eq. 1 covers both).
type Task int

// Tasks.
const (
	// TaskLinkPrediction scores true edges against corrupted negatives
	// (the paper's evaluation task, §5.1).
	TaskLinkPrediction Task = iota
	// TaskNodeClassification predicts each event's binary label from the
	// source node's embedding (MOOC-style drop-out prediction).
	TaskNodeClassification
)

// Config assembles one training run.
type Config struct {
	Model models.TGNN
	Sched batching.Scheduler
	Data  *graph.Dataset
	// Val is the chronological validation suffix (may be nil).
	Val *graph.Dataset
	// LR is Adam's learning rate (default 1e-3).
	LR float32
	// Device, when non-nil, accumulates simulated accelerator cost per
	// batch.
	Device *device.Model
	// ValBatch is the fixed batch size used for validation (the paper
	// evaluates every resulting model at 900; default 900, clamped to the
	// validation set).
	ValBatch int
	// Seed drives negative sampling.
	Seed int64
	// Task selects the objective (default link prediction).
	Task Task
	// OnBatch, when non-nil, receives a trace record after every training
	// batch (convergence curves, schedulers' behaviour over time).
	OnBatch func(BatchTrace)
	// Obs, when non-nil, receives per-batch training metrics (loss and
	// batch-size histograms, per-stage latency histograms, tape and
	// allocation and arena counters) — see README.md's Observability
	// section for the metric inventory.
	Obs *obs.Registry
	// Tracer, when non-nil, records every training batch as a span tree:
	// one root span per batch with children for the pipeline phases
	// (memory update, embed/forward, backward, optimizer step) plus the
	// scheduler's own spans when it implements batching.SpanScheduler.
	// nil keeps the hot path allocation-free (the nil-span fast path).
	Tracer *obs.Tracer
	// DisablePrefetch turns off the batch-preparation pipeline: batch k+1's
	// negative sampling and input vectors are then built on the main
	// goroutine after batch k completes, instead of overlapping its
	// backward pass. Results are bitwise-identical either way (the rng is
	// owned by exactly one goroutine at a time, in the serial draw order);
	// the switch exists for debugging and the equivalence test.
	DisablePrefetch bool
	// Staleness is the bounded-staleness budget s (MSPipe-style, see
	// DESIGN.md §12): a training batch's forward pass may read node
	// memories that are at most s queued memory-update rounds behind. With
	// s > 0 the trainer defers a node's pending update across batches and
	// force-applies it only when one more round of lag would exceed the
	// budget for a node the batch actually reads — deferred rounds collapse
	// into one updater row (messages keep only the most recent per node),
	// so the memory-update stage shrinks and the forward/backward/optimizer
	// stages of the intervening batches run without waiting on it.
	// s = 0 (the default) applies every pending round before every batch —
	// bitwise-identical to the serial pipeline, pinned by
	// TestStalenessZeroMatchesSerial. Validation always reads exact
	// (fully-applied) memories regardless of s. Requires the model to
	// implement models.PartialBeginner (all built-in models do).
	Staleness int
	// Compile turns on the plan capture/compile/execute pipeline (DESIGN.md
	// §13): the first batch of each shape runs eagerly while the trainer
	// records the prediction-head tape into a compiled Plan — adjacent
	// element-wise chains fused into single-loop kernels, every intermediate
	// pre-assigned a static slab — and every later batch with the same shape
	// replays the plan with zero tape-node allocations and zero arena
	// size-class lookups. It also switches the model's modules to their
	// fused forward implementations (models.Compilable). Replay is
	// bitwise-identical to the eager head (TestCompileMatchesEager); shapes
	// the compiler does not understand fall back to eager permanently.
	Compile bool
}

// BatchTrace is the per-batch instrumentation record. It is what
// `cascade-train --trace` serializes, one JSON object per line; the json
// tags below are that file format (durations are nanoseconds).
type BatchTrace struct {
	// Epoch and Index locate the batch (1-based epoch, 0-based batch).
	Epoch int `json:"epoch"`
	Index int `json:"batch"`
	// Size is the event count of the batch.
	Size int `json:"size"`
	// Loss is the batch training loss.
	Loss float64 `json:"loss"`
	// DeviceTime is the batch's simulated accelerator cost (zero without a
	// device model).
	DeviceTime time.Duration `json:"device_ns"`
	// CumEvents counts events processed so far this epoch.
	CumEvents int `json:"cum_events"`
	// Per-stage host latencies (the Figure-1 stages): BeginTime covers the
	// pending-message memory update, EmbedTime the embedding + prediction
	// forward pass, BackwardTime backprop + optimizer step, EndTime message
	// generation + adjacency append.
	BeginTime    time.Duration `json:"begin_ns"`
	EmbedTime    time.Duration `json:"embed_ns"`
	BackwardTime time.Duration `json:"backward_ns"`
	EndTime      time.Duration `json:"end_ns"`
	// Occupancy is the simulated device occupancy (zero without a device
	// model).
	Occupancy float64 `json:"occupancy"`
	// Maxr and StableRatio are the Cascade scheduler's runtime signals as
	// of this batch (zero for feedback-free schedulers).
	Maxr        int     `json:"maxr"`
	StableRatio float64 `json:"stable_ratio"`
	// TapeKernels / TapeFlops summarize the batch's autograd tape.
	TapeKernels int     `json:"tape_kernels"`
	TapeFlops   float64 `json:"tape_flops"`
	// AllocMatrices / AllocFloats count fresh tensor heap allocations during
	// the batch (floats ×4 = bytes). Arena hits do not count; with the
	// prefetch pipeline the window also covers batch k+1's preparation.
	AllocMatrices int64 `json:"alloc_matrices"`
	AllocFloats   int64 `json:"alloc_floats"`
	// PrepTime is the host time spent building the batch's inputs (negative
	// sampling, node/timestamp vectors, targets); under the prefetch
	// pipeline it overlaps the previous batch's backward pass and so mostly
	// vanishes from the critical path.
	PrepTime time.Duration `json:"prep_ns"`
	// PoolHits / PoolMisses / PoolFloatsRecycled are the tensor arena's
	// counters over the batch window: hits were served from the free list,
	// misses fell through to the Go heap.
	PoolHits           int64 `json:"pool_hits"`
	PoolMisses         int64 `json:"pool_misses"`
	PoolFloatsRecycled int64 `json:"pool_floats_recycled"`
	// Bounded-staleness accounting (all zero when Config.Staleness == 0):
	// StaleServed counts anchor reads this batch that saw memory ≥ 1 round
	// behind, StaleForced the anchors whose pending rounds were
	// force-applied to stay within budget, StaleApplied the nodes whose
	// update actually ran (forced anchors that had a pending message).
	StaleServed  int `json:"stale_served"`
	StaleForced  int `json:"stale_forced"`
	StaleApplied int `json:"stale_applied"`
	// Plan-cache accounting (all zero when Config.Compile is off): PlanHit
	// is 1 when this batch's prediction head replayed a compiled plan and 0
	// when it ran eagerly (first sight of a shape, or a fallback);
	// PlanFusedOps counts the fused kernels the replay executed.
	PlanHit      int `json:"plan_hit"`
	PlanFusedOps int `json:"plan_fused_ops"`
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch         int
	Batches       int
	MeanBatchSize float64
	// Loss is the event-weighted mean training loss.
	Loss float64
	// WallTime is the measured host time for the epoch (model compute +
	// scheduler work).
	WallTime time.Duration
	// DeviceTime is the simulated accelerator time (zero without a device
	// model).
	DeviceTime time.Duration
	// MeanOccupancy is the batch-weighted simulated device occupancy.
	MeanOccupancy float64
	// MaxrEnd is Cascade's endurance at epoch end (0 for other schedulers).
	MaxrEnd int
	// StableRatio is the SG-Filter's stable-update ratio (0 for other
	// schedulers).
	StableRatio float64
	// ValLoss is the isolated per-epoch validation loss (only filled by
	// TrainWithValidation).
	ValLoss float64
	// Bounded-staleness epoch totals (zero when Config.Staleness == 0):
	// StaleServed counts anchor reads served ≥ 1 round behind,
	// StaleAppliedRounds the queued rounds drained by forced applies, and
	// StaleMax the worst staleness any read was served at — which stays
	// ≤ Config.Staleness by construction (TestStalenessBudgetEnforced).
	StaleServed        int64
	StaleAppliedRounds int64
	StaleMax           int
}

// Trainer owns the predictor head and optimizer for one (model, scheduler,
// dataset) combination.
type Trainer struct {
	cfg       Config
	predictor *nn.MLP
	opt       *nn.Adam
	rng       *rand.Rand
	rngSrc    *countingSource // rng's source; makes the stream position checkpointable

	epoch int

	// Resilience extensions (checkpoint.go, health.go); all inert until the
	// corresponding Set* is called.
	ckptEvery int
	ckptHook  func(*CheckpointState) error
	health    HealthConfig
	healthWin []float64
	healthSum float64
	inj       *faultinject.Injector
	resume    *resumePoint

	// Bounded-staleness state (all nil/zero when Config.Staleness == 0 —
	// the s=0 hot path never touches these). ledger tracks per-node
	// queued-but-unapplied update rounds; partial is the model's
	// partial-apply capability; staleNeed/staleList are the recycled
	// per-batch force-apply set; stale is the last batch's accounting.
	ledger    *memstore.StalenessLedger
	partial   models.PartialBeginner
	staleNeed map[int32]bool
	staleList []int32
	stale     staleStats

	// Plan capture/compile/execute state (all nil/zero when Config.Compile
	// is off — the eager hot path never touches it). plans caches compiled
	// prediction-head programs keyed by batch shape; a nil value is a
	// tombstone for a shape whose tape failed to compile, so the trainer
	// stays eager for it without retrying. planOrder is the FIFO eviction
	// order; planLogits is the recycled const header wrapping a replayed
	// plan's logits slab; planBatch is the last batch's plan accounting for
	// the obs registry, span attributes and BatchTrace.
	plans      map[planKey]*plan.Plan
	planOrder  []planKey
	planLogits *tensor.Tensor
	planBatch  planBatchStats
}

// planKey identifies one batch shape. Task plus event count determine the
// whole head tape: the gather index vectors, concat widths and target layout
// are all derived from the batch size, and the embedding width is fixed by
// the model. hReq distinguishes grad-bearing boundaries from constant ones
// (e.g. APAN's identity embedder outside a memory-update batch).
type planKey struct {
	task Task
	size int
	hReq bool
}

// planBatchStats is one batch's plan-cache accounting.
type planBatchStats struct {
	hit      bool // head replayed a compiled plan
	miss     bool // shape never seen: ran eagerly, then captured
	fallback bool // tombstoned shape or guard mismatch: stayed eager
	fusedOps int  // fused kernels the replay executed
}

// planHitInt is planBatchStats.hit as a BatchTrace field.
func planHitInt(hit bool) int {
	if hit {
		return 1
	}
	return 0
}

// planCacheCap bounds the shape-keyed plan cache. Adaptive schedulers emit a
// drifting batch-size sequence; FIFO eviction keeps the static slabs of at
// most this many shapes alive.
const planCacheCap = 64

// staleStats is one batch's bounded-staleness accounting.
type staleStats struct {
	forced    int // anchors force-applied to stay within budget
	applied   int // nodes whose pending update ran (⊆ forced)
	served    int // anchor reads served ≥ 1 round behind
	fresh     int // anchor reads served fully fresh
	maxRounds int // worst staleness served this batch
	depWeight int // dependency-table weight of forced nodes (traced runs)
}

// maxrReporter and stableReporter are implemented by Cascade's scheduler;
// the trainer duck-types so it does not depend on internal/core.
type maxrReporter interface{ SensorMaxr() int }
type stableReporter interface{ StableUpdateRatio() float64 }

// relevantCounter is Cascade's dependency-table range count; traced
// staleness runs attach the forced nodes' dependency weight to the
// memory_apply span through it.
type relevantCounter interface {
	RelevantCount(n int32, st, ed int) int
}

// NewTrainer validates the configuration and builds the predictor head
// (the final MLP of §2.2 scoring [h_src ‖ h_dst]) and the Adam optimizer
// over model + head parameters.
func NewTrainer(cfg Config) (*Trainer, error) {
	if cfg.Model == nil || cfg.Sched == nil || cfg.Data == nil {
		return nil, fmt.Errorf("train: config needs Model, Sched and Data")
	}
	if err := cfg.Data.Validate(); err != nil {
		return nil, fmt.Errorf("train: invalid training data: %w", err)
	}
	if cfg.Val != nil {
		if err := cfg.Val.Validate(); err != nil {
			return nil, fmt.Errorf("train: invalid validation data: %w", err)
		}
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.ValBatch <= 0 {
		cfg.ValBatch = 900
	}
	if cfg.Task == TaskNodeClassification && cfg.Data.Labels == nil {
		return nil, fmt.Errorf("train: node classification needs a labeled dataset")
	}
	// Negative sampling corrupts the destination to a node distinct from
	// both endpoints; with fewer than 3 nodes no such node exists, so
	// reject early instead of letting the sampler spin.
	if cfg.Task == TaskLinkPrediction && cfg.Data.NumNodes < 3 {
		return nil, fmt.Errorf("train: link prediction needs ≥ 3 nodes for negative sampling, dataset has %d", cfg.Data.NumNodes)
	}
	if cfg.Task == TaskNodeClassification && cfg.Val != nil && cfg.Val.NumEvents() > 0 && cfg.Val.Labels == nil {
		return nil, fmt.Errorf("train: node classification needs labeled validation data")
	}
	if cfg.Staleness < 0 {
		return nil, fmt.Errorf("train: negative staleness bound %d", cfg.Staleness)
	}
	var partial models.PartialBeginner
	if cfg.Staleness > 0 {
		pb, ok := cfg.Model.(models.PartialBeginner)
		if !ok {
			return nil, fmt.Errorf("train: model %s cannot run with staleness %d: no partial BeginBatch (models.PartialBeginner)", cfg.Model.Name(), cfg.Staleness)
		}
		partial = pb
	}
	src := newCountingSource(cfg.Seed)
	rng := rand.New(src)
	embDim := cfg.Model.EmbedDim()
	predIn := 2 * embDim // link prediction scores [h_src ‖ h_dst]
	if cfg.Task == TaskNodeClassification {
		predIn = embDim // classification scores h_src alone
	}
	predictor := nn.NewMLP(rng, nn.ActReLU, predIn, embDim, 1)
	params := append(cfg.Model.Params(), predictor.Params()...)
	opt := nn.NewAdam(params, cfg.LR)
	opt.GradClip = 5
	t := &Trainer{cfg: cfg, predictor: predictor, opt: opt, rng: rng, rngSrc: src}
	if cfg.Compile {
		// The predictor head deliberately stays unfused: plan capture reads
		// its primitive tape, and compiled replay bypasses it entirely. Only
		// the model-side modules (whose tape the plan treats as an opaque
		// boundary) switch to fused kernels.
		if c, ok := cfg.Model.(models.Compilable); ok {
			c.SetCompile(true)
		}
		t.plans = make(map[planKey]*plan.Plan)
	}
	if cfg.Staleness > 0 {
		t.ledger = memstore.NewStalenessLedger(cfg.Data.NumNodes)
		t.partial = partial
		t.staleNeed = make(map[int32]bool)
	}
	return t, nil
}

// Predictor exposes the scoring head (examples use it for inference).
func (t *Trainer) Predictor() *nn.MLP { return t.predictor }

// TrainEpoch resets model memories and the scheduler, then runs one pass
// over the training events. It is TrainEpochChecked without the error: with
// no health monitor, fault injector or checkpoint hook installed, the
// checked variant cannot fail.
func (t *Trainer) TrainEpoch() EpochStats {
	st, _ := t.TrainEpochChecked()
	return st
}

// TrainEpochChecked is TrainEpoch with the resilience machinery active: it
// honors a restored mid-epoch checkpoint (continuing the interrupted epoch
// instead of resetting), takes full-state checkpoints at the configured
// cadence, and aborts with a *HealthError when the numerical-health monitor
// trips. On an abort the weights are left at their last finite values and
// any in-flight prefetch is joined and released before returning.
func (t *Trainer) TrainEpochChecked() (EpochStats, error) {
	resume := t.resume
	t.resume = nil
	if resume == nil {
		t.epoch++
		t.cfg.Model.Reset()
		t.cfg.Sched.Reset()
		if t.ledger != nil {
			// Memories and pending messages were just cleared; the ledger
			// owes nothing.
			t.ledger.Reset()
		}
	}
	st := EpochStats{Epoch: t.epoch}

	start := time.Now()
	var lossSum float64
	var eventSum int
	var occSum float64
	if resume != nil {
		st.Batches = resume.batches
		lossSum, eventSum, occSum = resume.lossSum, resume.eventSum, resume.occSum
		st.DeviceTime = resume.deviceTime
	}
	fail := func(err error) (EpochStats, error) {
		st.WallTime = time.Since(start)
		return st, err
	}
	_, schedCkpt := t.cfg.Sched.(batching.Checkpointable)
	// Tracing: when enabled and the scheduler can attribute its own phases,
	// route Next/OnBatchEnd through the spanned variants. With a nil tracer
	// both helpers collapse to the plain calls and the loop below passes nil
	// spans everywhere — the zero-allocation disabled path.
	tracer := t.cfg.Tracer
	spanSched, _ := t.cfg.Sched.(batching.SpanScheduler)
	schedNext := func(parent *obs.Span) (batching.Batch, bool) {
		if tracer != nil && spanSched != nil {
			return spanSched.NextSpanned(parent)
		}
		return t.cfg.Sched.Next()
	}
	schedEnd := func(fb batching.Feedback, parent *obs.Span) {
		if tracer != nil && spanSched != nil {
			spanSched.OnBatchEndSpanned(fb, parent)
			return
		}
		t.cfg.Sched.OnBatchEnd(fb)
	}
	// The loop is software-pipelined: while batch k's backward pass and
	// message generation run on this goroutine, batch k+1's host-side
	// preparation (negative sampling, node/timestamp vectors, targets)
	// proceeds on a prefetch goroutine. The prefetch touches only the
	// trainer rng and immutable dataset slices; model, optimizer and
	// scheduler state never leave this goroutine. The rng is owned by
	// exactly one goroutine at a time — handed to the prefetch at spawn,
	// reclaimed at the join — and prep k+1 still starts after prep k
	// finished, so the draw order (and every result) is identical to the
	// serial schedule.
	//
	// Checkpoint boundaries serialize the pipeline: when a checkpoint is due
	// at the end of batch k, the Sched.Next call and batch k+1's preparation
	// are deferred until after the snapshot, so the captured scheduler cursor
	// and RNG position sit exactly at the batch-k/k+1 boundary. Results are
	// unchanged (serial prep ≡ pipelined prep, pinned by
	// TestPrefetchMatchesSerial), and a restored run re-prepares batch k+1
	// from identical state.
	var prep *preparedBatch
	if b, ok := schedNext(nil); ok {
		prep = t.prepareSched(b)
	}
	for prep != nil {
		allocBefore := tensor.AllocSnapshot()
		poolBefore := tensor.PoolSnapshot()
		events := prep.events
		// One root span per batch; the phase children below put the batch on
		// the Chrome-trace lanes and into the flight-recorder ring.
		root := tracer.Start("batch", obs.PhaseOther)
		root.SetInt("epoch", int64(t.epoch))
		root.SetInt("batch", int64(st.Batches))
		root.SetInt("size", int64(len(events)))
		lossT, _, upd, tape, tm := t.forwardPrepared(prep, root)
		var loss float64
		if lossT != nil {
			loss = float64(lossT.Item())
		}
		if he := t.checkLoss(loss, st.Batches); he != nil {
			// Nothing is in flight yet this iteration: free the batch's tape
			// and abort before the bad loss reaches the scheduler feedback.
			upd.FreeTape(lossT)
			root.SetStr("health_error", he.Error())
			root.End()
			return fail(he)
		}
		lossSum += loss * float64(len(events))
		eventSum += len(events)
		st.Batches++
		// One cost-model evaluation per batch; the trace record below
		// reuses it rather than re-running the model.
		var cost device.Cost
		if t.cfg.Device != nil {
			cost = t.cfg.Device.BatchCost(tape, true)
			st.DeviceTime += cost.Time
			occSum += cost.Occupancy
		}
		// Feedback runs ahead of the backward pass: loss and memory update
		// are fully determined by the forward pass, and feeding the
		// scheduler now lets Next() — and with it the next batch's prep —
		// overlap backprop. The SG-Filter consumes Pre/Post synchronously
		// inside OnBatchEnd, before FreeTape below recycles them.
		fb := batching.Feedback{Loss: loss}
		if !upd.Empty() {
			fb.Nodes, fb.PreMem, fb.PostMem = upd.Nodes, upd.Pre, upd.Post
		}
		schedEnd(fb, root)
		// Scheduler signals are sampled after the feedback call so the
		// trace reflects any ABS decay this batch triggered.
		var maxr int
		var stableRatio float64
		if r, ok := t.cfg.Sched.(maxrReporter); ok {
			maxr = r.SensorMaxr()
		}
		if r, ok := t.cfg.Sched.(stableReporter); ok {
			stableRatio = r.StableUpdateRatio()
		}
		// Kick off batch k+1's preparation, then run batch k's backward
		// pass and message generation under it. A due checkpoint defers the
		// Sched.Next call past the snapshot (see the pipeline comment above).
		ckptDue := t.ckptHook != nil && t.ckptEvery > 0 && schedCkpt &&
			st.Batches%t.ckptEvery == 0
		var next *preparedBatch
		var prepCh chan *preparedBatch
		if !ckptDue {
			if nb, ok := schedNext(root); ok {
				if t.cfg.DisablePrefetch {
					next = t.prepareSpanned(nb, root)
				} else {
					ch := make(chan *preparedBatch, 1)
					go func() { ch <- t.prepareSpanned(nb, root) }()
					prepCh = ch
				}
			}
		}
		if lossT != nil {
			mark := time.Now()
			bsp := root.Child("backward", obs.PhaseBackward)
			t.opt.ZeroGrad()
			lossT.Backward()
			if t.inj.Fire(faultinject.PointTrainNaNGrad) {
				t.poisonGrad()
			}
			if he := t.checkGrad(st.Batches-1, loss); he != nil {
				// Skip the step so the weights keep their last finite values,
				// then join the prefetch before unwinding. Ending the batch's
				// span tree first lands it in the flight-recorder ring, so a
				// rollback dump includes the offending batch.
				upd.FreeTape(lossT)
				joinPrefetch(prepCh, next).release()
				bsp.SetFloat("grad_norm", he.GradNorm)
				bsp.End()
				root.SetStr("health_error", he.Error())
				root.SetFloat("loss", loss)
				root.End()
				return fail(he)
			}
			bsp.End()
			osp := root.Child("optimizer_step", obs.PhaseOptim)
			t.opt.Step()
			osp.End()
			tm.Backward = time.Since(mark)
		}
		if len(events) > 0 {
			mark := time.Now()
			msp := root.Child("memory_messages", obs.PhaseMemory)
			t.cfg.Model.EndBatch(events)
			msp.End()
			tm.End = time.Since(mark)
			if t.ledger != nil {
				// EndBatch queued one update round (the collapsed most-recent
				// message) for each unique endpoint; the next batches' budget
				// checks count from here.
				t.ledger.NoteQueued(prep.touched)
			}
		}
		// The batch's tape — loss graph plus the BeginBatch memory update —
		// is dead: recycle every intermediate into the arena.
		upd.FreeTape(lossT)
		alloc := tensor.AllocSnapshot().Sub(allocBefore)
		pool := tensor.PoolSnapshot().Sub(poolBefore)
		if t.cfg.Obs != nil {
			t.recordBatchObs(loss, len(events), tape, alloc, pool, tm, prep.prep)
		}
		if t.cfg.OnBatch != nil {
			t.cfg.OnBatch(BatchTrace{
				Epoch: t.epoch, Index: st.Batches - 1, Size: len(events),
				Loss: loss, DeviceTime: cost.Time, CumEvents: eventSum,
				BeginTime: tm.Begin, EmbedTime: tm.Embed,
				BackwardTime: tm.Backward, EndTime: tm.End,
				Occupancy: cost.Occupancy, Maxr: maxr, StableRatio: stableRatio,
				TapeKernels: tape.Kernels, TapeFlops: tape.Flops,
				AllocMatrices: alloc.Matrices, AllocFloats: alloc.Floats,
				PrepTime: prep.prep, PoolHits: pool.Hits,
				PoolMisses: pool.Misses, PoolFloatsRecycled: pool.FloatsRecycled,
				StaleServed: t.stale.served, StaleForced: t.stale.forced,
				StaleApplied: t.stale.applied,
				PlanHit:      planHitInt(t.planBatch.hit),
				PlanFusedOps: t.planBatch.fusedOps,
			})
		}
		root.SetFloat("loss", loss)
		root.SetInt("maxr", int64(maxr))
		root.SetFloat("stable_ratio", stableRatio)
		if t.cfg.Device != nil {
			root.SetInt("device_ns", cost.Time.Nanoseconds())
			root.SetFloat("occupancy", cost.Occupancy)
		}
		root.End()
		if ckptDue {
			c, err := t.capture(st.Batches, lossSum, eventSum, occSum, st.DeviceTime)
			if err != nil {
				return fail(err)
			}
			if err := t.ckptHook(c); err != nil {
				return fail(fmt.Errorf("train: checkpoint hook at epoch %d batch %d: %w", t.epoch, st.Batches, err))
			}
			// Deferred Sched.Next: prepare batch k+1 serially now that the
			// snapshot is taken (batch k's span is closed, so no parent).
			prep = nil
			if nb, ok := schedNext(nil); ok {
				prep = t.prepareSched(nb)
			}
		} else {
			prep = joinPrefetch(prepCh, next)
		}
		if err := t.inj.Err(faultinject.PointTrainAbort); err != nil {
			prep.release()
			return fail(fmt.Errorf("train: aborted at epoch %d after batch %d: %w", t.epoch, st.Batches, err))
		}
	}
	st.WallTime = time.Since(start)
	if eventSum > 0 {
		st.Loss = lossSum / float64(eventSum)
		st.MeanBatchSize = float64(eventSum) / float64(st.Batches)
	}
	if st.Batches > 0 {
		st.MeanOccupancy = occSum / float64(st.Batches)
	}
	if r, ok := t.cfg.Sched.(maxrReporter); ok {
		st.MaxrEnd = r.SensorMaxr()
	}
	if r, ok := t.cfg.Sched.(stableReporter); ok {
		st.StableRatio = r.StableUpdateRatio()
	}
	if t.ledger != nil {
		_, applied, servedStale, _, maxServed := t.ledger.Counters()
		st.StaleServed = servedStale
		st.StaleAppliedRounds = applied
		st.StaleMax = maxServed
	}
	return st, nil
}

// joinPrefetch resolves the batch-k+1 handoff: receive from the prefetch
// channel when one is in flight, else the serially-prepared batch (either
// may be nil at sequence end).
func joinPrefetch(prepCh chan *preparedBatch, next *preparedBatch) *preparedBatch {
	if prepCh != nil {
		return <-prepCh
	}
	return next
}

// release returns a prepared-but-never-forwarded batch's arena storage (the
// error paths' counterpart of FreeTape, which recycles targets once they are
// on the tape). Safe on nil.
func (p *preparedBatch) release() {
	if p != nil && p.targets != nil && !p.targets.Released() {
		p.targets.Release()
	}
}

// Train runs epochs and returns per-epoch statistics.
func (t *Trainer) Train(epochs int) []EpochStats {
	out := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		out = append(out, t.TrainEpoch())
	}
	return out
}

// Validate scores the validation suffix at the fixed evaluation batch size
// (for the link-prediction task; ValidateClass covers node classification),
// continuing chronologically from the trained state (memories keep
// updating; weights do not). Returns the event-weighted mean BCE loss.
func (t *Trainer) Validate() float64 {
	if t.cfg.Val == nil || t.cfg.Val.NumEvents() == 0 {
		return 0
	}
	var lossSum float64
	var eventSum int
	n := t.cfg.Val.NumEvents()
	for lo := 0; lo < n; lo += t.cfg.ValBatch {
		hi := lo + t.cfg.ValBatch
		if hi > n {
			hi = n
		}
		events := t.cfg.Val.Events[lo:hi]
		var loss float64
		if t.cfg.Task == TaskNodeClassification {
			loss, _ = t.stepClassOn(events, t.cfg.Val.Labels[lo:hi], false)
		} else {
			loss = t.stepOn(t.cfg.Val, events, false)
		}
		lossSum += loss * float64(len(events))
		eventSum += len(events)
	}
	return lossSum / float64(eventSum)
}

// stageTiming breaks one batch's host latency into the Figure-1 stages.
type stageTiming struct {
	Begin    time.Duration // BeginBatch: apply pending memory updates
	Embed    time.Duration // embed + predict + loss forward pass
	Backward time.Duration // backprop + optimizer step
	End      time.Duration // EndBatch: message generation + adjacency
}

// recordBatchObs publishes one training batch into the metrics registry.
func (t *Trainer) recordBatchObs(loss float64, size int, tape tensor.TapeStats, alloc tensor.AllocStats, pool tensor.PoolStats, tm stageTiming, prep time.Duration) {
	r := t.cfg.Obs
	r.Counter("train_batches_total").Inc()
	r.Counter("train_events_total").Add(int64(size))
	r.Gauge("train_last_loss").Set(loss)
	r.Histogram("train_batch_loss", 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1, 1.5, 2, 3).Observe(loss)
	r.Histogram("train_batch_size", obs.SizeEdges...).Observe(float64(size))
	r.Histogram("train_begin_seconds", obs.LatencyEdges...).Observe(tm.Begin.Seconds())
	r.Histogram("train_embed_seconds", obs.LatencyEdges...).Observe(tm.Embed.Seconds())
	r.Histogram("train_backward_seconds", obs.LatencyEdges...).Observe(tm.Backward.Seconds())
	r.Histogram("train_end_seconds", obs.LatencyEdges...).Observe(tm.End.Seconds())
	r.Counter("train_tape_kernels_total").Add(int64(tape.Kernels))
	r.Gauge("train_tape_flops_total").Add(tape.Flops)
	r.Counter("train_alloc_matrices_total").Add(alloc.Matrices)
	r.Counter("train_alloc_floats_total").Add(alloc.Floats)
	r.Histogram("train_prep_seconds", obs.LatencyEdges...).Observe(prep.Seconds())
	r.Counter("train_pool_hits_total").Add(pool.Hits)
	r.Counter("train_pool_misses_total").Add(pool.Misses)
	r.Counter("train_pool_floats_recycled_total").Add(pool.FloatsRecycled)
	if t.ledger != nil {
		r.Gauge("train_staleness_budget").Set(float64(t.cfg.Staleness))
		r.Counter("train_staleness_served_total").Add(int64(t.stale.served))
		r.Counter("train_staleness_fresh_total").Add(int64(t.stale.fresh))
		r.Counter("train_staleness_forced_total").Add(int64(t.stale.forced))
		r.Counter("train_staleness_applied_total").Add(int64(t.stale.applied))
		r.Histogram("train_staleness_rounds", 0, 1, 2, 4, 8, 16).Observe(float64(t.stale.maxRounds))
		r.Help("train_staleness_served_total", "Anchor memory reads served ≥ 1 update round behind (bounded-staleness pipeline).")
		r.Help("train_staleness_forced_total", "Anchors force-applied because one more deferred round would exceed the staleness budget.")
		r.Help("train_staleness_rounds", "Worst staleness (in update rounds) served per batch; bounded by train_staleness_budget.")
	}
	if t.plans != nil {
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		r.Counter("train_plan_hits_total").Add(b2i(t.planBatch.hit))
		r.Counter("train_plan_misses_total").Add(b2i(t.planBatch.miss))
		r.Counter("train_plan_fallbacks_total").Add(b2i(t.planBatch.fallback))
		r.Counter("train_plan_fused_ops_total").Add(int64(t.planBatch.fusedOps))
		r.Gauge("train_plan_cache_size").Set(float64(len(t.plans)))
		r.Help("train_plan_hits_total", "Training batches whose prediction head replayed a compiled plan (shape-keyed cache hit).")
		r.Help("train_plan_misses_total", "Training batches that ran the eager head on first sight of a shape; a plan capture followed.")
		r.Help("train_plan_fallbacks_total", "Training batches that stayed eager on a tombstoned shape or a failed replay guard.")
		r.Help("train_plan_fused_ops_total", "Fused kernels executed by compiled-plan replays (each replaces a multi-op eager chain).")
		r.Help("train_plan_cache_size", "Compiled plans (including tombstones) currently cached, bounded by the FIFO cap.")
	}
}

// batchLabels aligns the dataset's labels with a batch: contiguous batches
// slice, indexed batches (NeutronStream layers) gather.
func batchLabels(labels []uint8, b batching.Batch) []uint8 {
	if b.Indices == nil {
		return labels[b.St:b.Ed]
	}
	out := make([]uint8, len(b.Indices))
	for i, idx := range b.Indices {
		out[i] = labels[idx]
	}
	return out
}

// preparedBatch is the host-side input of one batch, built by the prepare*
// functions — possibly on the prefetch goroutine while the previous batch
// is still in backprop. It carries no model or scheduler state.
type preparedBatch struct {
	task   Task
	events []graph.Event
	// nodes/ts feed Embed: link prediction packs [src… dst… neg…], node
	// classification just the sources.
	nodes []int32
	ts    []float64
	// targets is arena-backed and joins the tape via ConstScratch, so
	// FreeTape recycles it with the rest of the batch.
	targets                *tensor.Matrix
	srcIdx, dstIdx, negIdx []int
	// prep is the host time spent building the fields above.
	prep time.Duration
	// train marks batches produced by the scheduler walk (prepareSched):
	// only those participate in bounded staleness — validation batches
	// (stepOn/prepareLink directly) always apply every pending update.
	train bool
	// touched / st / ed are the staleness ledger's per-batch dependency
	// metadata, filled only when a ledger is active: touched is the batch's
	// unique endpoint set (the nodes EndBatch will queue an update round
	// for), st/ed the contiguous event range (zero for indexed batches).
	touched []int32
	st, ed  int
}

// prepareSpanned is prepareSched bracketed by a batch_prep child span of the
// current batch's root — under the prefetch pipeline the child starts and
// ends on the prefetch goroutine while the root lives on the training
// goroutine, which the span API supports (and may even outlive the root's
// End; the sinks tolerate late children).
func (t *Trainer) prepareSpanned(b batching.Batch, parent *obs.Span) *preparedBatch {
	sp := parent.Child("batch_prep", obs.PhaseOther)
	p := t.prepareSched(b)
	sp.SetInt("size", int64(len(p.events)))
	sp.End()
	return p
}

// prepareSched materializes a scheduler batch into a preparedBatch. Safe to
// run off the main goroutine: it reads only immutable dataset slices and
// the trainer rng, which the pipeline hands to exactly one goroutine at a
// time (so the draw order stays the serial order).
func (t *Trainer) prepareSched(b batching.Batch) *preparedBatch {
	events := b.Events(t.cfg.Data.Events)
	var p *preparedBatch
	if t.cfg.Task == TaskNodeClassification {
		p = t.prepareClass(events, batchLabels(t.cfg.Data.Labels, b))
	} else {
		p = t.prepareLink(t.cfg.Data, events)
	}
	p.train = true
	if t.ledger != nil {
		// Computed here so the prefetch pipeline overlaps it with the
		// previous batch's backward pass, like the rest of the prep work.
		p.touched = batching.UniqueNodes(events, nil)
		if b.Indices == nil {
			p.st, p.ed = b.St, b.Ed
		}
	}
	return p
}

// prepareLink builds step 1's inputs for a link-prediction batch: positive
// pairs are the batch's edges; negatives corrupt the destination.
func (t *Trainer) prepareLink(ds *graph.Dataset, events []graph.Event) *preparedBatch {
	start := time.Now()
	p := &preparedBatch{task: TaskLinkPrediction, events: events}
	b := len(events)
	if b == 0 {
		p.prep = time.Since(start)
		return p
	}
	nodes := make([]int32, 0, 3*b)
	ts := make([]float64, 0, 3*b)
	for _, e := range events {
		nodes = append(nodes, e.Src)
		ts = append(ts, e.Time)
	}
	for _, e := range events {
		nodes = append(nodes, e.Dst)
		ts = append(ts, e.Time)
	}
	for _, e := range events {
		nodes = append(nodes, t.negativeSample(ds, e))
		ts = append(ts, e.Time)
	}
	p.nodes, p.ts = nodes, ts
	p.srcIdx = make([]int, b)
	p.dstIdx = make([]int, b)
	p.negIdx = make([]int, b)
	for i := 0; i < b; i++ {
		p.srcIdx[i] = i
		p.dstIdx[i] = b + i
		p.negIdx[i] = 2*b + i
	}
	p.targets = tensor.NewMatrix(2*b, 1)
	for i := 0; i < b; i++ {
		p.targets.Data[i] = 1
	}
	p.prep = time.Since(start)
	return p
}

// prepareClass builds step 1's inputs for a node-classification batch.
func (t *Trainer) prepareClass(events []graph.Event, labels []uint8) *preparedBatch {
	start := time.Now()
	p := &preparedBatch{task: TaskNodeClassification, events: events}
	b := len(events)
	if b == 0 {
		p.prep = time.Since(start)
		return p
	}
	p.nodes = make([]int32, b)
	p.ts = make([]float64, b)
	p.targets = tensor.NewMatrix(b, 1)
	for i, e := range events {
		p.nodes[i] = e.Src
		p.ts[i] = e.Time
		p.targets.Data[i] = float32(labels[i])
	}
	p.prep = time.Since(start)
	return p
}

// forwardPrepared runs steps 0 and 1 of Figure 1 on an already-prepared
// batch: apply pending memory updates on the tape, embed, predict, build
// the loss. Backward, EndBatch and tape disposal stay with the caller so
// TrainEpoch can overlap them with the next batch's preparation. For an
// empty batch the loss and logits are nil (the BeginBatch update still
// runs and must still be freed). parent, when non-nil, receives the memory
// update and forward pass as child spans.
func (t *Trainer) forwardPrepared(prep *preparedBatch, parent *obs.Span) (loss, logits *tensor.Tensor, upd *models.MemoryUpdate, tape tensor.TapeStats, tm stageTiming) {
	model := t.cfg.Model
	if t.plans != nil {
		t.planBatch = planBatchStats{}
	}
	// Step 0 (lazy message application, see internal/models): previous
	// batch's messages update memories on the tape. Under a staleness
	// budget, training batches apply only the anchors that would otherwise
	// exceed it; everything else stays queued (DESIGN.md §12).
	mark := time.Now()
	msp := parent.Child("memory_apply", obs.PhaseMemory)
	if t.ledger != nil && prep.train {
		upd = t.beginStale(prep, msp)
		msp.SetInt("stale_forced", int64(t.stale.forced))
		msp.SetInt("stale_served", int64(t.stale.served))
	} else {
		upd = model.BeginBatch()
	}
	msp.SetInt("updated_nodes", int64(len(upd.Nodes)))
	msp.End()
	tm.Begin = time.Since(mark)
	if len(prep.events) == 0 {
		return nil, nil, upd, tensor.TapeStats{}, tm
	}
	mark = time.Now()
	esp := parent.Child("embed_forward", obs.PhaseEmbed)
	if t.ledger != nil && prep.train {
		esp.SetInt("stale_served", int64(t.stale.served))
		esp.SetInt("stale_max_rounds", int64(t.stale.maxRounds))
	}
	h := model.Embed(prep.nodes, prep.ts)
	if t.plans != nil {
		loss, logits = t.planApply(prep, h)
	}
	if loss == nil {
		if prep.task == TaskNodeClassification {
			logits = t.predictor.Forward(h)
		} else {
			hSrc := tensor.GatherRowsT(h, prep.srcIdx)
			posLogits := t.predictor.Forward(tensor.ConcatColsT(hSrc, tensor.GatherRowsT(h, prep.dstIdx)))
			negLogits := t.predictor.Forward(tensor.ConcatColsT(hSrc, tensor.GatherRowsT(h, prep.negIdx)))
			logits = tensor.ConcatRowsT(posLogits, negLogits)
		}
		loss = tensor.BCEWithLogitsT(logits, tensor.ConstScratch(prep.targets))
		if t.plans != nil {
			t.planCompile(prep, loss, h)
		}
	}
	tape = tensor.StatsOf(loss)
	esp.SetInt("tape_kernels", int64(tape.Kernels))
	esp.SetFloat("tape_flops", tape.Flops)
	if t.plans != nil {
		var hit int64
		if t.planBatch.hit {
			hit = 1
			esp.SetInt("plan_fused_ops", int64(t.planBatch.fusedOps))
		}
		esp.SetInt("plan_hit", hit)
	}
	esp.End()
	tm.Embed = time.Since(mark)
	return loss, logits, upd, tape, tm
}

// planApply replays the cached compiled plan for the batch's shape,
// returning the plan's loss node and a logits view, or (nil, nil) to route
// the batch through the eager head: the shape was never seen (a capture
// follows this batch), the shape is tombstoned, or a runtime guard failed.
// The plan node goes through Backward/FreeTape exactly like an eager loss;
// consumers of the logits (scoreBatch, stepClassOn) already copy the data
// out within the batch, which is all a static slab requires.
func (t *Trainer) planApply(prep *preparedBatch, h *tensor.Tensor) (loss, logits *tensor.Tensor) {
	key := planKey{task: prep.task, size: len(prep.events), hReq: h.RequiresGrad()}
	pl, ok := t.plans[key]
	if !ok {
		t.planBatch.miss = true
		return nil, nil
	}
	if pl == nil {
		t.planBatch.fallback = true
		return nil, nil
	}
	out := pl.Apply(h, prep.targets)
	if out == nil {
		t.planBatch.fallback = true
		return nil, nil
	}
	// The batch's targets join the node's scratch set so FreeTape recycles
	// them with the tape, exactly as the eager head's ConstScratch leaf does.
	out.RetainScratch(prep.targets)
	t.planBatch.hit = true
	t.planBatch.fusedOps = pl.FusedOps()
	if t.planLogits == nil {
		t.planLogits = tensor.Const(pl.Logits())
	} else {
		t.planLogits.RearmConst(pl.Logits())
	}
	return out, t.planLogits
}

// planCompile captures the eager head tape just built for a shape the cache
// has not seen, storing the compiled plan — or a nil tombstone when the tape
// contains an op the compiler does not understand, so the shape runs eagerly
// from then on without re-attempting capture. Called before Backward: the
// capturer only reads the tape's structure and the compiled slabs are not
// written until the first Apply.
func (t *Trainer) planCompile(prep *preparedBatch, loss, h *tensor.Tensor) {
	key := planKey{task: prep.task, size: len(prep.events), hReq: h.RequiresGrad()}
	if _, ok := t.plans[key]; ok {
		// Tombstoned, or a guard mismatch fell back past a live plan.
		return
	}
	pl, err := plan.Compile(loss, h)
	if err != nil {
		pl = nil
	}
	if len(t.planOrder) >= planCacheCap {
		delete(t.plans, t.planOrder[0])
		n := copy(t.planOrder, t.planOrder[1:])
		t.planOrder = t.planOrder[:n]
	}
	t.plans[key] = pl
	t.planOrder = append(t.planOrder, key)
}

// beginStale is BeginBatch under a bounded-staleness budget s: scan the
// batch's anchor nodes (the src/dst/negative memories the forward pass is
// about to read), force-apply the pending updates of exactly those whose
// queued rounds exceed s, and leave every other node's update deferred.
// Invariant: after the apply, every anchor read this batch is at most s
// rounds behind — forced anchors are fresh, the rest were within budget
// already. Forced nodes are always among the batch's embedded nodes, so the
// updater's forward stays on the loss tape and keeps receiving gradients;
// sampled-neighbor reads are best-effort (they may be staler than s, as in
// MSPipe). Also records the batch's staleness accounting into t.stale and,
// on traced runs with a dependency table, the forced nodes' dependency
// weight over the batch range.
func (t *Trainer) beginStale(prep *preparedBatch, msp *obs.Span) *models.MemoryUpdate {
	budget := t.cfg.Staleness
	need := t.staleNeed
	clear(need)
	t.staleList = t.staleList[:0]
	for _, n := range prep.nodes {
		if need[n] {
			continue
		}
		if t.ledger.Rounds(n) > budget {
			need[n] = true
			t.staleList = append(t.staleList, n)
		}
	}
	upd := t.partial.BeginBatchWhere(func(n int32) bool { return need[n] })
	// Clear the whole force set, not just upd.Nodes: a forced node with no
	// pending message (its queue was drained out of band, e.g. by a
	// non-isolated Validate) owes nothing anymore either.
	t.ledger.NoteApplied(t.staleList)
	t.stale = staleStats{forced: len(t.staleList), applied: len(upd.Nodes)}
	for _, n := range prep.nodes {
		if r := t.ledger.NoteServed(n); r > 0 {
			t.stale.served++
			if r > t.stale.maxRounds {
				t.stale.maxRounds = r
			}
		} else {
			t.stale.fresh++
		}
	}
	if msp != nil && prep.ed > prep.st {
		if rc, ok := t.cfg.Sched.(relevantCounter); ok {
			for _, n := range t.staleList {
				t.stale.depWeight += rc.RelevantCount(n, prep.st, prep.ed)
			}
			msp.SetInt("stale_dep_weight", int64(t.stale.depWeight))
		}
	}
	return upd
}

// finishStep completes a serial (non-pipelined) batch: backward pass when
// learning, message generation, loss readout, tape recycling. Validation
// and tests go through here; TrainEpoch inlines the same sequence so it
// can interleave the prefetch.
func (t *Trainer) finishStep(lossT *tensor.Tensor, upd *models.MemoryUpdate, events []graph.Event, learn bool) float64 {
	if lossT != nil && learn {
		t.opt.ZeroGrad()
		lossT.Backward()
		t.opt.Step()
	}
	// Steps 2 and 3: generate this batch's messages and queue the memory
	// updates (applied on the tape at the next BeginBatch).
	if len(events) > 0 {
		t.cfg.Model.EndBatch(events)
	}
	var loss float64
	if lossT != nil {
		loss = float64(lossT.Item())
	}
	upd.FreeTape(lossT)
	return loss
}

// stepOn executes the three training steps of Figure 1 on one
// link-prediction batch, serially, recycling the tape before returning.
func (t *Trainer) stepOn(ds *graph.Dataset, events []graph.Event, learn bool) float64 {
	prep := t.prepareLink(ds, events)
	lossT, _, upd, _, _ := t.forwardPrepared(prep, nil)
	return t.finishStep(lossT, upd, events, learn)
}

// negativeSample draws a corrupted destination ≠ src, ≠ the true dst.
// Rejection sampling is bounded: with the ≥ 3 nodes NewTrainer enforces,
// each draw succeeds with probability ≥ 1/3, so the loop almost never
// reaches the deterministic scan — which guarantees termination on any
// input rather than spinning forever when no valid candidate exists.
func (t *Trainer) negativeSample(ds *graph.Dataset, e graph.Event) int32 {
	for i := 0; i < 32; i++ {
		n := int32(t.rng.Intn(ds.NumNodes))
		if n != e.Src && n != e.Dst {
			return n
		}
	}
	start := int32(t.rng.Intn(ds.NumNodes))
	for i := 0; i < ds.NumNodes; i++ {
		n := (start + int32(i)) % int32(ds.NumNodes)
		if n != e.Src && n != e.Dst {
			return n
		}
	}
	// No node differs from both endpoints (< 3 nodes): fall back to the
	// true destination so even a malformed caller terminates.
	return e.Dst
}

// MeanLoss averages the Loss field of epoch stats.
func MeanLoss(epochs []EpochStats) float64 {
	if len(epochs) == 0 {
		return 0
	}
	var s float64
	for _, e := range epochs {
		s += e.Loss
	}
	return s / float64(len(epochs))
}

// TotalWall sums epoch wall times.
func TotalWall(epochs []EpochStats) time.Duration {
	var s time.Duration
	for _, e := range epochs {
		s += e.WallTime
	}
	return s
}

// TotalDevice sums simulated device times.
func TotalDevice(epochs []EpochStats) time.Duration {
	var s time.Duration
	for _, e := range epochs {
		s += e.DeviceTime
	}
	return s
}

// TrainWithEarlyStop trains up to maxEpochs, stopping once the epoch train
// loss fails to improve for `patience` consecutive epochs. Returns the
// per-epoch statistics and whether the run stopped early.
func (t *Trainer) TrainWithEarlyStop(maxEpochs, patience int) ([]EpochStats, bool) {
	if patience <= 0 {
		patience = 3
	}
	var out []EpochStats
	best := math.Inf(1)
	since := 0
	for e := 0; e < maxEpochs; e++ {
		st := t.TrainEpoch()
		out = append(out, st)
		if st.Loss < best-1e-9 {
			best = st.Loss
			since = 0
			continue
		}
		since++
		if since >= patience {
			return out, true
		}
	}
	return out, false
}

// ValidateIsolated runs Validate against a snapshot of the model's stream
// state and restores it afterwards, so mid-training validation does not
// perturb the training stream (validation otherwise advances memories and
// adjacency). Weights are untouched either way.
func (t *Trainer) ValidateIsolated() float64 {
	snap := t.cfg.Model.Snapshot()
	v := t.Validate()
	t.cfg.Model.Restore(snap)
	return v
}

// TrainWithValidation runs epochs like Train but records an isolated
// validation loss after each epoch in EpochStats.ValLoss.
func (t *Trainer) TrainWithValidation(epochs int) []EpochStats {
	out := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		st := t.TrainEpoch()
		st.ValLoss = t.ValidateIsolated()
		out = append(out, st)
	}
	return out
}
