package train

import (
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
)

// runCompiled trains two epochs with or without the plan pipeline and
// returns per-batch losses, the final validation loss, and the cumulative
// plan-hit count observed in the traces.
func runCompiled(t *testing.T, model string, full, tr, val *graph.Dataset, staleness int, compile bool) ([]float64, float64, int) {
	t.Helper()
	m := models.MustNew(model, full, 16, 4, 5)
	var losses []float64
	hits := 0
	tt, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val,
		LR: 2e-3, ValBatch: 100, Seed: 9,
		Staleness: staleness,
		Compile:   compile,
		OnBatch: func(bt BatchTrace) {
			losses = append(losses, bt.Loss)
			hits += bt.PlanHit
			if compile && bt.PlanHit == 1 && bt.PlanFusedOps == 0 {
				t.Errorf("batch %d: plan hit with zero fused kernels", bt.Index)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tt.Train(2)
	return losses, tt.Validate(), hits
}

// TestCompileMatchesEager pins the tentpole's exactness contract on every
// Table 1 model, with and without the bounded-staleness pipeline: -compile
// must be bitwise-identical to the eager head — same per-batch losses, same
// validation loss — while actually replaying compiled plans for the bulk of
// the batches (every fixed-size batch after the first two shapes is a hit).
func TestCompileMatchesEager(t *testing.T) {
	full, tr, val := trainValData(t)
	for _, name := range models.Names {
		for _, s := range []int{0, 2} {
			t.Run(name+sLabel(s), func(t *testing.T) {
				eager, eagerVal, _ := runCompiled(t, name, full, tr, val, s, false)
				comp, compVal, hits := runCompiled(t, name, full, tr, val, s, true)
				if len(eager) != len(comp) {
					t.Fatalf("batch counts differ: %d vs %d", len(eager), len(comp))
				}
				for i := range eager {
					if math.Float64bits(eager[i]) != math.Float64bits(comp[i]) {
						t.Fatalf("batch %d loss diverged: eager %v vs compiled %v", i, eager[i], comp[i])
					}
				}
				if math.Float64bits(eagerVal) != math.Float64bits(compVal) {
					t.Fatalf("validation loss diverged: eager %v vs compiled %v", eagerVal, compVal)
				}
				if hits < len(comp)/2 {
					t.Fatalf("only %d/%d training batches replayed a plan", hits, len(comp))
				}
			})
		}
	}
}

func sLabel(s int) string {
	if s == 0 {
		return "/s0"
	}
	return "/s2"
}

// TestPlanSmoke is the `make plansmoke` gate: one compiled TGN run must
// compile exactly the shapes it sees, replay every repeat batch, execute
// fused kernels, and report it all through the train_plan_* metrics.
func TestPlanSmoke(t *testing.T) {
	full, tr, val := trainValData(t)
	r := obs.NewRegistry()
	m := models.MustNew("TGN", full, 16, 4, 5)
	tt, err := NewTrainer(Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 60),
		Data: tr, Val: val, Seed: 9, Compile: true, Obs: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tt.TrainEpoch()
	hits := r.Counter("train_plan_hits_total").Value()
	misses := r.Counter("train_plan_misses_total").Value()
	fused := r.Counter("train_plan_fused_ops_total").Value()
	if hits+misses != int64(st.Batches) {
		t.Fatalf("plan hits %d + misses %d ≠ %d batches (fallbacks?)", hits, misses, st.Batches)
	}
	// A fixed-size schedule has at most two shapes (full batches + remainder),
	// so all but a couple of batches replay.
	if misses > 2 || hits < int64(st.Batches)-2 {
		t.Fatalf("plan cache ineffective: %d hits, %d misses over %d batches", hits, misses, st.Batches)
	}
	if fused == 0 {
		t.Fatal("no fused kernels executed")
	}
	if r.Counter("train_plan_fallbacks_total").Value() != 0 {
		t.Fatalf("unexpected plan fallbacks: %d", r.Counter("train_plan_fallbacks_total").Value())
	}
	if got := r.Gauge("train_plan_cache_size").Value(); got < 1 {
		t.Fatalf("plan cache size %v, want ≥ 1", got)
	}
	if v := tt.Validate(); v <= 0 || math.IsNaN(v) {
		t.Fatalf("validation loss %v", v)
	}
}
