package train

import (
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
)

// runTraced trains two epochs and returns the per-batch loss sequence plus
// the final validation loss.
func runTraced(t *testing.T, sched batching.Scheduler, full, tr, val *graph.Dataset, disablePrefetch bool) ([]float64, float64) {
	t.Helper()
	m := models.MustNew("TGN", full, 16, 4, 5)
	var losses []float64
	tt, err := NewTrainer(Config{
		Model: m, Sched: sched, Data: tr, Val: val,
		LR: 2e-3, ValBatch: 100, Seed: 9,
		DisablePrefetch: disablePrefetch,
		OnBatch:         func(bt BatchTrace) { losses = append(losses, bt.Loss) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tt.Train(2)
	return losses, tt.Validate()
}

// TestPrefetchMatchesSerial pins the pipeline's determinism contract: with
// the prefetch goroutine preparing batch k+1 under batch k's backward pass,
// every per-batch loss (and the validation loss) must be bitwise identical
// to the serial schedule — the rng is owned by one goroutine at a time and
// draws in the same order. The adaptive Cascade scheduler is the strongest
// check because its batch boundaries react to the loss feedback.
func TestPrefetchMatchesSerial(t *testing.T) {
	full, tr, val := trainValData(t)
	for _, tc := range []struct {
		name  string
		sched func() batching.Scheduler
	}{
		{"fixed", func() batching.Scheduler { return batching.NewFixed("TGL", tr.NumEvents(), 60) }},
		{"cascade", func() batching.Scheduler {
			return core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, serialVal := runTraced(t, tc.sched(), full, tr, val, true)
			piped, pipedVal := runTraced(t, tc.sched(), full, tr, val, false)
			if len(serial) != len(piped) {
				t.Fatalf("batch counts differ: serial %d, pipelined %d", len(serial), len(piped))
			}
			for i := range serial {
				if serial[i] != piped[i] {
					t.Fatalf("batch %d loss diverged: serial %v, pipelined %v", i, serial[i], piped[i])
				}
			}
			if serialVal != pipedVal {
				t.Fatalf("validation loss diverged: serial %v, pipelined %v", serialVal, pipedVal)
			}
		})
	}
}
