package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Replication wire protocol (DESIGN.md §15), primary → standby over one TCP
// connection, all integers little-endian:
//
//	handshake:  sender  → magic "CASCREP1" | version u32
//	            standby → magic "CASCREP1" | version u32 | nextSeq u64
//
// The standby's nextSeq tells the sender where to resume tailing — the
// replication protocol never negotiates per-frame, the WAL's sequence
// numbers are the shared truth.
//
//	'F' u32 len | frame        one committed CASCWAL1 frame, verbatim bytes
//	'S' u64 seq | u32 len | …  catch-up snapshot (CASCSNAP payload) at seq
//	'P' u64 seq | i64 nano     ping: keepalive + ack solicitation + lag stamp
//	'A' u64 seq                standby → sender: cumulative durable ack
//
// Frames are the log's own encoding (seq + CRC32C inside), so the standby
// appends the primary's bytes verbatim and both logs stay byte-comparable
// (tools/walcheck -prefix-of). Acks are cumulative: 'A' seq means every
// record ≤ seq is applied AND fsynced on the standby.
//
// The ping payload is the replication time-lag stamp (DESIGN.md §16): seq is
// the primary's committed sequence at send time and nano its wall clock
// (UnixNano). The standby, once it has applied through seq, exports
// now−nano as serve_repl_apply_lag_seconds; the sender keeps a ring of its
// own stamps and, when an ack covers a stamped seq, exports now−nano as
// serve_repl_ack_lag_seconds. Pings ride the existing flush points (after
// each drained batch and on idle), so the stamps cost no extra round trips.
// Both gauges include the sender→standby clock skew; on one host (the only
// deployment today) that is nil, and cross-host it is the same skew every
// distributed-lag monitor carries.

var replMagic = [8]byte{'C', 'A', 'S', 'C', 'R', 'E', 'P', '1'}

// replVersion is the replication protocol version.
const replVersion uint32 = 1

// Message type bytes.
const (
	msgFrame    = 'F'
	msgSnapshot = 'S'
	msgPing     = 'P'
	msgAck      = 'A'
)

// maxSnapshotBytes bounds a declared snapshot length; anything larger is a
// protocol error, never an allocation request.
const maxSnapshotBytes = 1 << 30

var errBadHandshake = errors.New("cluster: bad replication handshake")

// writeHello sends the sender half of the handshake.
func writeHello(w io.Writer) error {
	var buf [12]byte
	copy(buf[:8], replMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], replVersion)
	_, err := w.Write(buf[:])
	return err
}

// readHello validates the sender half on the standby.
func readHello(r io.Reader) error {
	var buf [12]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("%w: %v", errBadHandshake, err)
	}
	if [8]byte(buf[:8]) != replMagic {
		return fmt.Errorf("%w: magic %q", errBadHandshake, buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != replVersion {
		return fmt.Errorf("%w: version %d, this build speaks %d", errBadHandshake, v, replVersion)
	}
	return nil
}

// writeWelcome sends the standby half: handshake echo plus resume position.
func writeWelcome(w io.Writer, nextSeq uint64) error {
	var buf [20]byte
	copy(buf[:8], replMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], replVersion)
	binary.LittleEndian.PutUint64(buf[12:20], nextSeq)
	_, err := w.Write(buf[:])
	return err
}

// readWelcome validates the standby half on the sender, returning the
// standby's next expected sequence number.
func readWelcome(r io.Reader) (uint64, error) {
	var buf [20]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", errBadHandshake, err)
	}
	if [8]byte(buf[:8]) != replMagic {
		return 0, fmt.Errorf("%w: magic %q", errBadHandshake, buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != replVersion {
		return 0, fmt.Errorf("%w: version %d, this build speaks %d", errBadHandshake, v, replVersion)
	}
	return binary.LittleEndian.Uint64(buf[12:20]), nil
}

func writeFrameMsg(w *bufio.Writer, frame []byte) error {
	var hdr [5]byte
	hdr[0] = msgFrame
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

func writeSnapshotMsg(w *bufio.Writer, seq uint64, data []byte) error {
	var hdr [13]byte
	hdr[0] = msgSnapshot
	binary.LittleEndian.PutUint64(hdr[1:9], seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// writePingMsg sends a keepalive carrying the lag stamp: the sender's
// committed sequence and wall clock at send time.
func writePingMsg(w *bufio.Writer, seq uint64, nano int64) error {
	var buf [17]byte
	buf[0] = msgPing
	binary.LittleEndian.PutUint64(buf[1:9], seq)
	binary.LittleEndian.PutUint64(buf[9:17], uint64(nano))
	_, err := w.Write(buf[:])
	return err
}

// readPingPayload reads the stamp that follows a msgPing type byte.
func readPingPayload(r io.Reader) (seq uint64, nano int64, err error) {
	var buf [16]byte
	if _, err = io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(buf[0:8]), int64(binary.LittleEndian.Uint64(buf[8:16])), nil
}

func writeAckMsg(w *bufio.Writer, seq uint64) error {
	var buf [9]byte
	buf[0] = msgAck
	binary.LittleEndian.PutUint64(buf[1:9], seq)
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	return w.Flush()
}

func readAckMsg(r io.Reader) (uint64, error) {
	var buf [9]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	if buf[0] != msgAck {
		return 0, fmt.Errorf("cluster: expected ack, got message %q", buf[0])
	}
	return binary.LittleEndian.Uint64(buf[1:9]), nil
}
