package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"sync"

	"github.com/cascade-ml/cascade/internal/obs"
)

// Metrics federation (DESIGN.md §16). GET /metrics?federate=1 on the router
// answers one exposition for the whole cluster: every member's /metrics,
// each sample relabeled with shard="N", role="primary|standby" and
// member="<url>", merged with the router's own (unlabeled) families. A
// member that fails to answer is skipped — federation returns partial
// results, never an error — and counted in router_federate_errors_total, so
// a scrape of the router keeps working through exactly the failures it
// exists to observe.

// handleFederate serves the merged exposition.
func (r *Router) handleFederate(w http.ResponseWriter, req *http.Request) {
	type target struct {
		shard int
		role  string
		url   string
	}
	var targets []target
	for i, sh := range r.shards {
		sh.mu.Lock()
		for j, m := range sh.members {
			role := "standby"
			if j == sh.primary {
				role = "primary"
			}
			targets = append(targets, target{shard: i, role: role, url: m.url})
		}
		sh.mu.Unlock()
	}

	// Scrape members concurrently: a down member costs one timeout, not one
	// timeout per member in series.
	lists := make([][]obs.PromFamily, len(targets))
	var wg sync.WaitGroup
	for ti, t := range targets {
		wg.Add(1)
		go func(ti int, t target) {
			defer wg.Done()
			fams, err := r.scrapeMember(req.Context(), t.url)
			if err != nil {
				r.m.Counter("router_federate_errors_total").Inc()
				return
			}
			obs.RelabelFamilies(fams, []obs.PromLabel{
				{Name: "shard", Value: strconv.Itoa(t.shard)},
				{Name: "role", Value: t.role},
				{Name: "member", Value: t.url},
			})
			lists[ti] = fams
		}(ti, t)
	}
	wg.Wait()

	// The router's own families go last and unlabeled — rendered after the
	// scrape so router_federate_errors_total reflects this very request.
	var own bytes.Buffer
	_ = r.m.WritePrometheus(&own)
	ownFams, _ := obs.ParsePromText(&own)
	lists = append(lists, ownFams)

	var present [][]obs.PromFamily
	for _, l := range lists {
		if l != nil {
			present = append(present, l)
		}
	}
	merged := obs.MergeFamilies(present...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteFamilies(w, merged)
}

// scrapeMember fetches and parses one member's /metrics.
func (r *Router) scrapeMember(ctx context.Context, base string) ([]obs.PromFamily, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, &scrapeStatusError{status: resp.StatusCode}
	}
	return obs.ParsePromText(io.LimitReader(resp.Body, 8<<20))
}

type scrapeStatusError struct{ status int }

func (e *scrapeStatusError) Error() string {
	return "scrape returned status " + strconv.Itoa(e.status)
}
