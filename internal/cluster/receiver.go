package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/wal"
)

// ReplicaState is the standby-side surface the receiver drives — implemented
// by serve.Server. The receiver owns the socket; the server owns the state.
type ReplicaState interface {
	// ReplicaNextSeq is the next WAL sequence the standby expects.
	ReplicaNextSeq() uint64
	// ApplyReplicated appends one primary WAL record and applies it.
	ApplyReplicated(seq uint64, payload []byte) error
	// SyncReplica fsyncs replicated records — the ack barrier.
	SyncReplica() error
	// InstallReplicaSnapshot replaces standby state with a catch-up snapshot.
	InstallReplicaSnapshot(seq uint64, data []byte) error
	// ReplicaWritable reports whether replicated state is still accepted
	// (false once the standby has been promoted).
	ReplicaWritable() bool
}

// ReceiverConfig wires a replication receiver to its standby server.
type ReceiverConfig struct {
	// Addr is the TCP listen address for the replication stream.
	Addr string
	// State is the standby being fed (serve.Server).
	State ReplicaState
	// AckEvery bounds how many frames may be applied before a durability
	// barrier + ack, even while the stream stays busy (default 64).
	AckEvery int
	// Metrics receives serve_repl_* series (nil-safe).
	Metrics *obs.Registry
	// Injector arms the repl/ack fault point (nil disables).
	Injector *faultinject.Injector
	// Logger receives connection lifecycle events (nil for silent).
	Logger *slog.Logger
}

// Receiver is the standby half of WAL shipping: it accepts the primary's
// stream, appends frames verbatim through ReplicaState, and acks only after
// fsync — an ack is a durability promise, so the sync-then-ack order is the
// whole correctness story. One session at a time; a new connection bumps the
// old one (the primary reconnecting after a network blip must not be locked
// out by its own half-dead predecessor).
type Receiver struct {
	cfg ReceiverConfig
	ln  net.Listener

	mu     sync.Mutex
	cur    net.Conn
	closed bool
	wg     sync.WaitGroup
}

// NewReceiver starts listening. Call Stop to tear it down.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.State == nil {
		return nil, errors.New("cluster: receiver needs a replica state")
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 64
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: receiver listen: %w", err)
	}
	r := &Receiver{cfg: cfg, ln: ln}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr is the bound listen address (useful with ":0").
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

// Stop closes the listener and any live session.
func (r *Receiver) Stop() {
	r.mu.Lock()
	r.closed = true
	cur := r.cur
	r.mu.Unlock()
	r.ln.Close()
	if cur != nil {
		cur.Close()
	}
	r.wg.Wait()
}

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		if r.cur != nil {
			r.cur.Close() // newest connection wins
		}
		r.cur = conn
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			err := r.session(conn)
			conn.Close()
			r.mu.Lock()
			if r.cur == conn {
				r.cur = nil
			}
			r.mu.Unlock()
			if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && r.cfg.Logger != nil {
				r.cfg.Logger.Warn("replication session ended", "error", err.Error())
			}
		}()
	}
}

// session serves one primary connection.
func (r *Receiver) session(conn net.Conn) error {
	if err := readHello(conn); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 4<<10)
	if err := writeWelcome(conn, r.cfg.State.ReplicaNextSeq()); err != nil {
		return err
	}
	if r.cfg.Logger != nil {
		r.cfg.Logger.Info("replication accepted", "from", conn.RemoteAddr().String(),
			"next_seq", r.cfg.State.ReplicaNextSeq())
	}

	pending := 0 // frames applied since the last sync+ack
	// pendingStamp holds the newest lag stamp (proto.go) whose sequence the
	// standby has not applied yet; once applied it becomes the
	// serve_repl_apply_lag_seconds gauge.
	var pendingStamp replStamp
	observeApplyLag := func() {
		if pendingStamp.at.IsZero() {
			return
		}
		if r.cfg.State.ReplicaNextSeq()-1 < pendingStamp.seq {
			return
		}
		lag := time.Since(pendingStamp.at).Seconds()
		if lag < 0 {
			lag = 0
		}
		r.cfg.Metrics.Gauge("serve_repl_apply_lag_seconds").Set(lag)
		pendingStamp = replStamp{}
	}
	// ack syncs what has been applied and acknowledges it. The repl/ack
	// fault point swallows the ack (keeping the data — the primary's resend
	// after reconnect must dedup by seq, which AppendRecord's strict
	// next-seq check plus the handshake's resume position provide).
	ack := func() error {
		if pending > 0 {
			if err := r.cfg.State.SyncReplica(); err != nil {
				return fmt.Errorf("sync: %w", err)
			}
			pending = 0
		}
		if ferr := r.cfg.Injector.Err(faultinject.PointReplAck); ferr != nil {
			if r.cfg.Logger != nil {
				r.cfg.Logger.Warn("ack suppressed by fault injection", "error", ferr.Error())
			}
			return nil
		}
		return writeAckMsg(bw, r.cfg.State.ReplicaNextSeq()-1)
	}

	for {
		msg, err := br.ReadByte()
		if err != nil {
			return err
		}
		switch msg {
		case msgFrame:
			var lenBuf [4]byte
			if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
				return err
			}
			n := binary.LittleEndian.Uint32(lenBuf[:])
			if n > wal.MaxRecordBytes+64 {
				return fmt.Errorf("cluster: implausible frame length %d", n)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				return err
			}
			seq, payload, err := wal.DecodeFrame(buf)
			if err != nil {
				return err
			}
			if !r.cfg.State.ReplicaWritable() {
				return errors.New("cluster: replica promoted; refusing frames")
			}
			if want := r.cfg.State.ReplicaNextSeq(); seq != want {
				// Out-of-order stream: drop the session and let the primary
				// re-handshake at our true position.
				return fmt.Errorf("cluster: frame seq %d, standby expects %d", seq, want)
			}
			if err := r.cfg.State.ApplyReplicated(seq, payload); err != nil {
				return err
			}
			r.cfg.Metrics.Counter("serve_repl_frames_received_total").Inc()
			pending++
			observeApplyLag()
			// Ack when the pipe drains (the primary is waiting) or the
			// un-synced batch is getting long.
			if br.Buffered() == 0 || pending >= r.cfg.AckEvery {
				if err := ack(); err != nil {
					return err
				}
			}
		case msgSnapshot:
			var hdr [12]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			seq := binary.LittleEndian.Uint64(hdr[0:8])
			n := binary.LittleEndian.Uint32(hdr[8:12])
			if n > maxSnapshotBytes {
				return fmt.Errorf("cluster: implausible snapshot length %d", n)
			}
			data := make([]byte, n)
			if _, err := io.ReadFull(br, data); err != nil {
				return err
			}
			if !r.cfg.State.ReplicaWritable() {
				return errors.New("cluster: replica promoted; refusing snapshot")
			}
			if err := r.cfg.State.InstallReplicaSnapshot(seq, data); err != nil {
				return err
			}
			r.cfg.Metrics.Counter("serve_repl_snapshots_received_total").Inc()
			pending = 0 // install is durable on its own
			observeApplyLag()
			if err := ack(); err != nil {
				return err
			}
		case msgPing:
			seq, nano, err := readPingPayload(br)
			if err != nil {
				return err
			}
			// Keep the newest stamp; if its sequence is already applied the
			// lag gauge updates immediately (idle stream), otherwise it waits
			// for the frame that covers it.
			pendingStamp = replStamp{seq: seq, at: time.Unix(0, nano)}
			observeApplyLag()
			if err := ack(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: unknown replication message %q", msg)
		}
	}
}
