package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func routerGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestFederateMergesMemberMetrics(t *testing.T) {
	prim, stby := newStubShard(t, "primary"), newStubShard(t, "standby")
	r, _ := testRouter(t, nil, ShardSpec{Primary: prim.url(), Standby: stby.url()})
	h := r.Handler()
	waitRouterReady(t, h)

	rec := routerGet(t, h, "/metrics?federate=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("federate status %d: %s", rec.Code, rec.Body.String())
	}
	out := rec.Body.String()
	for _, want := range []string{
		// Both members' families, relabeled with shard/role/member and the
		// member's own colliding shard label renamed.
		`stub_last_bid{shard="0",role="primary",member="` + prim.url() + `",exported_shard="local"}`,
		`stub_last_bid{shard="0",role="standby",member="` + stby.url() + `",exported_shard="local"}`,
		// The router's own families ride along unlabeled.
		"router_probe_rtt_seconds",
		"slo_availability_burn_rate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "router_federate_errors_total{") {
		t.Fatalf("healthy scrape relabeled the router's own counter:\n%s", out)
	}
}

func TestFederatePartialOnMemberDown(t *testing.T) {
	prim, stby := newStubShard(t, "primary"), newStubShard(t, "standby")
	r, reg := testRouter(t, nil, ShardSpec{Primary: prim.url(), Standby: stby.url()})
	h := r.Handler()
	waitRouterReady(t, h)
	stby.Kill()

	rec := routerGet(t, h, "/metrics?federate=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("federation must return partial results, not %d: %s", rec.Code, rec.Body.String())
	}
	out := rec.Body.String()
	if !strings.Contains(out, `stub_last_bid{shard="0",role="primary",member="`+prim.url()+`"`) {
		t.Fatalf("live member's metrics missing from partial exposition:\n%s", out)
	}
	// The dead member contributed no scraped samples (the router's own
	// router_probe_rtt_seconds gauge may still mention its URL — that is the
	// router observing the member, not the member's exposition).
	if strings.Contains(out, `stub_last_bid{shard="0",role="standby"`) {
		t.Fatalf("dead member's samples appeared in the exposition:\n%s", out)
	}
	if got := reg.Counter("router_federate_errors_total").Value(); got < 1 {
		t.Fatalf("router_federate_errors_total = %v, want >= 1", got)
	}
	// The rendered errors counter reflects this very request, not a stale
	// pre-scrape snapshot.
	if !strings.Contains(out, "router_federate_errors_total") {
		t.Fatalf("errors counter missing from exposition:\n%s", out)
	}
}

func TestDebugClusterEndpoint(t *testing.T) {
	prim, stby := newStubShard(t, "primary"), newStubShard(t, "standby")
	r, _ := testRouter(t, nil, ShardSpec{Primary: prim.url(), Standby: stby.url()})
	h := r.Handler()
	waitRouterReady(t, h)

	rec := routerGet(t, h, "/debug/cluster")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/cluster status %d", rec.Code)
	}
	var dbg struct {
		Shards []struct {
			ID      int `json:"id"`
			Primary int `json:"primary"`
			Members []struct {
				URL   string `json:"url"`
				Role  string `json:"role"`
				Alive bool   `json:"alive"`
				Ready bool   `json:"ready"`
			} `json:"members"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dbg); err != nil {
		t.Fatalf("debug/cluster not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(dbg.Shards) != 1 || len(dbg.Shards[0].Members) != 2 {
		t.Fatalf("shape wrong: %+v", dbg)
	}
	m0 := dbg.Shards[0].Members[dbg.Shards[0].Primary]
	if m0.Role != "primary" || !m0.Alive || !m0.Ready {
		t.Fatalf("primary member state: %+v", m0)
	}
}
