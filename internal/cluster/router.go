package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/serve"
)

// ShardSpec names one shard's members: a primary and an optional standby,
// each a base URL ("http://host:port").
type ShardSpec struct {
	Primary string
	Standby string
}

// RouterConfig tunes the shard router.
type RouterConfig struct {
	// Shards is the cluster layout; len(Shards) is the rendezvous modulus,
	// so the order and count must match across router restarts.
	Shards []ShardSpec
	// ProbeInterval is the health-probe cadence (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (default half the interval).
	ProbeTimeout time.Duration
	// ProbeMisses is the consecutive-miss count that declares a member dead
	// and, for a primary with a live standby, triggers failover (default 3).
	ProbeMisses int
	// HintDepth bounds each shard's hinted-handoff queue in batches
	// (default 256). Beyond it, ingest returns 503 — bounded memory beats
	// unbounded promises.
	HintDepth int
	// RequestTimeout bounds each proxied request (default 5s).
	RequestTimeout time.Duration
	// Client overrides the proxy HTTP client (default: fresh client, keeps
	// RequestTimeout).
	Client *http.Client
	// Metrics receives router_* series (nil-safe).
	Metrics *obs.Registry
	// Tracer, when non-nil, starts a distributed root span per /ingest and
	// /score request and propagates its traceparent to every shard touched
	// (see obs/ctx.go). Nil disables tracing but not routing.
	Tracer *obs.Tracer
	// SLO overrides the router's error-budget tracker (default objectives
	// when nil; the slo_* gauges are always exported).
	SLO *obs.SLO
	// Injector arms probe/timeout and promote fault points (nil disables).
	Injector *faultinject.Injector
	// Logger receives failover and hint lifecycle events (nil for silent).
	Logger *slog.Logger
}

// hint is one batch waiting for its shard to take writes again. The bid was
// assigned at first send and sticks across retries — the shard's dedup keys
// off it, which is what makes replay exactly-once.
type hint struct {
	bid    uint64
	events []serve.EventIn
}

// member is one process in a shard. The last* fields cache what the most
// recent /readyz probe reported, so /debug/cluster and the router's own
// /readyz can surface per-member health without extra round trips.
type member struct {
	url         string
	alive       bool
	misses      int
	lastReady   bool
	lastReasons []string
	replLag     uint64 // repl_lag_records from the member's last /readyz
}

// shard is the router's state for one primary/standby pair. Writes and
// failover serialize on mu — hinted batches must flush in assignment order,
// and a promote must not interleave with an in-flight ingest decision.
type shard struct {
	id      int
	mu      sync.Mutex
	members []*member
	primary int // index into members
	breaker *load.Breaker
	hints   []hint
	nextBid uint64
	// bidSynced flips after the first successful /stats read of the writable
	// member: a restarted router must resume above the shard's last applied
	// bid or its fresh batches would be wrongly deduped.
	bidSynced bool
}

func (sh *shard) standbyIdx() int {
	if len(sh.members) < 2 {
		return -1
	}
	return 1 - sh.primary
}

// Router fronts the shard cluster: it splits /ingest and /score requests
// across shards by pair ownership (hash.go), health-checks every member,
// promotes a standby when its primary goes quiet, and buffers writes as
// hinted handoff while a shard has no writable member. Stateless across
// restarts except for the hint queues (bounded, in-memory — a router crash
// loses only batches it never acknowledged).
type Router struct {
	cfg    RouterConfig
	client *http.Client
	shards []*shard
	m      *obs.Registry
	tracer *obs.Tracer
	slo    *obs.SLO

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter builds the router and starts its probe loop. Call Stop to halt.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.ProbeMisses <= 0 {
		cfg.ProbeMisses = 3
	}
	if cfg.HintDepth <= 0 {
		cfg.HintDepth = 256
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	r := &Router{cfg: cfg, client: client, m: cfg.Metrics, tracer: cfg.Tracer, slo: cfg.SLO, stop: make(chan struct{})}
	if r.slo == nil {
		r.slo = obs.NewSLO(obs.SLOConfig{})
	}
	r.slo.Register(r.m)
	for i, spec := range cfg.Shards {
		if spec.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %d has no primary", i)
		}
		sh := &shard{
			id:      i,
			members: []*member{{url: strings.TrimRight(spec.Primary, "/")}},
			breaker: load.NewBreaker(load.BreakerConfig{
				FailureThreshold: cfg.ProbeMisses,
				Cooldown:         cfg.ProbeInterval,
				Gauge:            "router_breaker_state",
			}),
		}
		if spec.Standby != "" {
			sh.members = append(sh.members, &member{url: strings.TrimRight(spec.Standby, "/")})
		}
		r.shards = append(r.shards, sh)
	}
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// Stop halts the probe loop. In-flight proxied requests finish.
func (r *Router) Stop() {
	close(r.stop)
	r.wg.Wait()
}

func (r *Router) shardLabel(id int) map[string]string {
	return map[string]string{"shard": strconv.Itoa(id)}
}

// ---------------------------------------------------------------------------
// HTTP surface

// Handler returns the router's HTTP mux. The data-plane routes mirror the
// shard servers' (/ingest, /score) so clients can point at either a solo
// server or a router unchanged; they run behind the tracing/SLO middleware.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /ingest", r.instrument("ingest", r.handleIngest))
	mux.Handle("POST /score", r.instrument("score", r.handleScore))
	mux.Handle("GET /stats", http.HandlerFunc(r.handleStats))
	mux.Handle("GET /healthz", http.HandlerFunc(r.handleHealthz))
	mux.Handle("GET /readyz", http.HandlerFunc(r.handleReadyz))
	mux.Handle("GET /metrics", http.HandlerFunc(r.handleMetrics))
	mux.Handle("GET /debug/cluster", http.HandlerFunc(r.handleDebugCluster))
	return mux
}

// rstatusWriter remembers the response code for the middleware.
type rstatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *rstatusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// spanCtxKey carries the request's distributed-trace context through
// context.Context to the shard-proxying helpers.
type spanCtxKey struct{}

// spanCtxFrom recovers the trace context instrument stored (zero when the
// request was not instrumented, e.g. in direct handler tests).
func spanCtxFrom(ctx context.Context) obs.SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(obs.SpanContext)
	return sc
}

// instrument wraps a data-plane route with the cluster trace root span and
// the SLO tracker. The span continues an inbound traceparent when the
// client sent one, mints a fresh trace-id otherwise, and its context rides
// the request context so postIngest/scoreShard can inject it shard-ward.
func (r *Router) instrument(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		parent, _ := obs.Extract(req.Header)
		sp := r.tracer.StartRemote("router_"+route, obs.PhaseOther, parent)
		sw := &rstatusWriter{ResponseWriter: w, status: http.StatusOK}
		req = req.WithContext(context.WithValue(req.Context(), spanCtxKey{}, sp.SpanContext()))
		next(sw, req)
		elapsed := time.Since(start)
		sp.SetStr("route", route)
		sp.SetInt("status", int64(sw.status))
		sp.End()
		r.m.Histogram("router_"+route+"_seconds", obs.LatencyEdges...).Observe(elapsed.Seconds())
		// Same SLI convention as the shards: only 5xx spends error budget.
		r.slo.Observe(sw.status < 500, elapsed)
		if r.cfg.Logger != nil {
			lvl := slog.LevelDebug
			if sw.status >= 400 {
				lvl = slog.LevelWarn
			}
			args := []any{
				"route", route, "status", sw.status,
				"duration_ms", float64(elapsed.Nanoseconds()) / 1e6,
			}
			if tid := sp.TraceID(); tid != "" {
				args = append(args, "trace_id", tid)
			}
			r.cfg.Logger.Log(req.Context(), lvl, "request", args...)
		}
	})
}

func rwriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func rhttpError(w http.ResponseWriter, status int, format string, args ...any) {
	rwriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type routerIngestRequest struct {
	Events []serve.EventIn `json:"events"`
}

type routerScoreRequest struct {
	Pairs []serve.PairIn `json:"pairs"`
	Time  float64        `json:"time"`
}

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	r.m.Counter("router_ingest_requests_total").Inc()
	req.Body = http.MaxBytesReader(w, req.Body, serve.MaxBodyBytes)
	var in routerIngestRequest
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		rhttpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(in.Events) == 0 {
		rhttpError(w, http.StatusBadRequest, "no events")
		return
	}
	// Partition by pair ownership, preserving request order within each
	// shard — the shards' stream-time validation depends on it.
	parts := make([][]serve.EventIn, len(r.shards))
	for _, ev := range in.Events {
		s := Owner(ev.Src, ev.Dst, len(r.shards))
		parts[s] = append(parts[s], ev)
	}
	direct, hinted := 0, 0
	sc := spanCtxFrom(req.Context())
	for si, events := range parts {
		if len(events) == 0 {
			continue
		}
		n, h, herr := r.ingestShard(r.shards[si], events, sc)
		if herr != nil {
			// A definitive shard-side rejection (4xx): forward it. Earlier
			// shards may already have applied their slices — ingest is
			// per-shard atomic, not per-request atomic.
			rwriteJSON(w, herr.status, herr.body)
			return
		}
		direct += n
		hinted += h
	}
	r.m.Counter("router_ingest_events_total").Add(int64(direct + hinted))
	if hinted > 0 {
		rwriteJSON(w, http.StatusAccepted, map[string]any{"ingested": direct, "hinted": hinted})
		return
	}
	rwriteJSON(w, http.StatusOK, map[string]any{"ingested": direct})
}

// shardError carries a shard's definitive (4xx) rejection back to the client.
type shardError struct {
	status int
	body   map[string]any
}

// ingestShard routes one shard's slice of a batch: hint when the shard has
// no writable member (or older hints are still queued — order!), otherwise
// send with a fresh bid and hint on ambiguous failure.
func (r *Router) ingestShard(sh *shard, events []serve.EventIn, sc obs.SpanContext) (direct, hinted int, herr *shardError) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	prim := sh.members[sh.primary]
	// Queue behind existing hints even if the shard looks healthy again:
	// batches must land in bid order, and the flusher owns the queue.
	if len(sh.hints) > 0 || !prim.alive {
		return 0, len(events), r.enqueueHintLocked(sh, events)
	}
	sh.nextBid++
	bid := sh.nextBid
	status, body, err := r.postIngest(prim.url, events, bid, sc)
	switch {
	case err == nil && status < 300:
		return len(events), 0, nil
	case err == nil && status >= 400 && status < 500:
		// Definitive rejection: the shard saw the batch and refused it. The
		// bid is burned (never applied), which is fine — dedup only needs
		// bids to increase.
		return 0, 0, &shardError{status: status, body: body}
	default:
		// Transport error or 5xx: ambiguous — the shard may or may not have
		// applied the batch. Park it under its assigned bid; the shard-side
		// dedup makes the replay exactly-once either way.
		return 0, len(events), r.enqueueHintLocked(sh, hint{bid: bid, events: events})
	}
}

// enqueueHintLocked parks a batch (or raw events, which get a bid now) in
// the shard's bounded hint queue.
func (r *Router) enqueueHintLocked(sh *shard, v any) *shardError {
	var h hint
	switch x := v.(type) {
	case hint:
		h = x
	case []serve.EventIn:
		sh.nextBid++
		h = hint{bid: sh.nextBid, events: x}
	}
	if len(sh.hints) >= r.cfg.HintDepth {
		r.m.Counter("router_hint_dropped_total").Inc()
		r.m.CounterWith("router_hint_dropped_total_by_shard", r.shardLabel(sh.id)).Inc()
		return &shardError{status: http.StatusServiceUnavailable, body: map[string]any{
			"error": fmt.Sprintf("shard %d unavailable and hint queue full", sh.id), "code": "hint_overflow",
		}}
	}
	sh.hints = append(sh.hints, h)
	hinted := len(sh.hints)
	r.m.Counter("router_hinted_total").Inc()
	r.m.GaugeWith("router_hint_depth", r.shardLabel(sh.id)).Set(float64(hinted))
	return nil
}

// postIngest sends one batch to one member, propagating the request's trace
// context (a zero sc — hint flushes, direct tests — injects nothing).
func (r *Router) postIngest(base string, events []serve.EventIn, bid uint64, sc obs.SpanContext) (int, map[string]any, error) {
	payload, _ := json.Marshal(map[string]any{"events": events, "bid": bid})
	hr, err := http.NewRequest(http.MethodPost, base+"/ingest", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	sc.Inject(hr.Header)
	resp, err := r.client.Do(hr)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	_ = json.NewDecoder(io.LimitReader(resp.Body, serve.MaxBodyBytes)).Decode(&body)
	return resp.StatusCode, body, nil
}

// flushHints drains a shard's hint queue in order. Called from the probe
// loop once the shard has a live writable member; holds sh.mu throughout so
// new ingests queue behind the flush rather than jumping it.
func (r *Router) flushHints(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for len(sh.hints) > 0 {
		prim := sh.members[sh.primary]
		if !prim.alive {
			break
		}
		h := sh.hints[0]
		status, _, err := r.postIngest(prim.url, h.events, h.bid, obs.SpanContext{})
		switch {
		case err == nil && status < 300:
			sh.hints = sh.hints[1:]
			r.m.Counter("router_hint_flushed_total").Inc()
		case err == nil && status >= 400 && status < 500:
			// The shard definitively refused a parked batch — it can never
			// land, so holding it (and everything behind it) hostage helps
			// no one. Count the loss loudly and move on.
			sh.hints = sh.hints[1:]
			r.m.Counter("router_hint_dropped_total").Inc()
			if r.cfg.Logger != nil {
				r.cfg.Logger.Warn("hinted batch rejected by shard; dropped",
					"shard", sh.id, "bid", h.bid, "status", status)
			}
		default:
			return // still unreachable; retry next probe round
		}
	}
	r.m.GaugeWith("router_hint_depth", r.shardLabel(sh.id)).Set(float64(len(sh.hints)))
}

func (r *Router) handleScore(w http.ResponseWriter, req *http.Request) {
	r.m.Counter("router_score_requests_total").Inc()
	req.Body = http.MaxBytesReader(w, req.Body, serve.MaxBodyBytes)
	var in routerScoreRequest
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		rhttpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(in.Pairs) == 0 {
		rhttpError(w, http.StatusBadRequest, "no pairs")
		return
	}
	type slot struct {
		pairs []serve.PairIn
		idx   []int
	}
	parts := make([]slot, len(r.shards))
	for i, p := range in.Pairs {
		s := Owner(p.Src, p.Dst, len(r.shards))
		parts[s].pairs = append(parts[s].pairs, p)
		parts[s].idx = append(parts[s].idx, i)
	}
	scores := make([]float64, len(in.Pairs))
	stale := false
	for si, part := range parts {
		if len(part.pairs) == 0 {
			continue
		}
		got, partStale, herr := r.scoreShard(req.Context(), r.shards[si], part.pairs, in.Time)
		if herr != nil {
			rwriteJSON(w, herr.status, herr.body)
			return
		}
		stale = stale || partStale
		for j, v := range got {
			scores[part.idx[j]] = v
		}
	}
	if stale {
		r.m.Counter("router_score_stale_total").Inc()
	}
	rwriteJSON(w, http.StatusOK, map[string]any{"scores": scores, "stale": stale})
}

// scoreShard scores one shard's pairs, preferring the primary (fresh) and
// falling back to the standby (stale-ok) on breaker-open, transport failure
// or 5xx. 503 only when no member answers — reads must survive failover.
func (r *Router) scoreShard(ctx context.Context, sh *shard, pairs []serve.PairIn, at float64) ([]float64, bool, *shardError) {
	sh.mu.Lock()
	prim, stby := sh.primary, sh.standbyIdx()
	order := []int{prim}
	primOK := sh.members[prim].alive && sh.breaker.Allow()
	if stby >= 0 {
		if primOK {
			order = append(order, stby)
		} else {
			order = []int{stby, prim}
		}
	}
	urls := make([]string, len(order))
	for i, mi := range order {
		urls[i] = sh.members[mi].url
	}
	sh.mu.Unlock()

	payload, _ := json.Marshal(map[string]any{"pairs": pairs, "time": at})
	var lastErr *shardError
	for i, u := range urls {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/score", bytes.NewReader(payload))
		if err != nil {
			continue
		}
		hr.Header.Set("Content-Type", "application/json")
		spanCtxFrom(ctx).Inject(hr.Header)
		resp, err := r.client.Do(hr)
		if err != nil {
			if order[i] == prim {
				sh.breaker.RecordFailure()
			}
			lastErr = &shardError{status: http.StatusServiceUnavailable, body: map[string]any{
				"error": fmt.Sprintf("shard %d unreachable: %v", sh.id, err), "code": "shard_down",
			}}
			continue
		}
		var body struct {
			Scores []float64 `json:"scores"`
			Stale  bool      `json:"stale"`
			Error  string    `json:"error"`
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, serve.MaxBodyBytes)).Decode(&body)
		resp.Body.Close()
		switch {
		case resp.StatusCode < 300 && derr == nil:
			if order[i] == prim {
				sh.breaker.RecordSuccess()
			}
			// Answers from a non-primary member are stale by construction:
			// the standby's state trails the replication stream.
			return body.Scores, body.Stale || order[i] != prim, nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return nil, false, &shardError{status: resp.StatusCode, body: map[string]any{"error": body.Error}}
		default:
			if order[i] == prim {
				sh.breaker.RecordFailure()
			}
			lastErr = &shardError{status: http.StatusServiceUnavailable, body: map[string]any{
				"error": fmt.Sprintf("shard %d refused: %s", sh.id, body.Error), "code": "shard_down",
			}}
		}
	}
	if lastErr == nil {
		lastErr = &shardError{status: http.StatusServiceUnavailable, body: map[string]any{
			"error": fmt.Sprintf("shard %d has no reachable member", sh.id), "code": "shard_down",
		}}
	}
	return nil, false, lastErr
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	shards := make([]map[string]any, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.Lock()
		members := make([]map[string]any, len(sh.members))
		for j, m := range sh.members {
			members[j] = map[string]any{"url": m.url, "alive": m.alive, "misses": m.misses}
		}
		shards[i] = map[string]any{
			"members":  members,
			"primary":  sh.primary,
			"hints":    len(sh.hints),
			"next_bid": sh.nextBid,
			"breaker":  sh.breaker.State().String(),
		}
		sh.mu.Unlock()
	}
	rwriteJSON(w, http.StatusOK, map[string]any{
		"shards":        shards,
		"failovers":     r.m.Counter("router_failovers_total").Value(),
		"hints_dropped": r.m.Counter("router_hint_dropped_total").Value(),
		"hints_flushed": r.m.Counter("router_hint_flushed_total").Value(),
	})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	rwriteJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleReadyz mirrors the shard servers' structured contract: 200 with
// {"ready":true} when every shard has a live member, 503 with reasons
// otherwise. Replication degradation reported by a shard primary (standby
// disconnected/lagging, with the record lag) is appended as advisory
// reasons: they name an exposure window but do not flip the status — the
// shard is still serving.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	reasons := []string{}
	advisory := []string{}
	for i, sh := range r.shards {
		sh.mu.Lock()
		any := false
		for _, m := range sh.members {
			any = any || m.alive
		}
		hints := len(sh.hints)
		prim := sh.members[sh.primary]
		for _, reason := range prim.lastReasons {
			switch {
			case strings.Contains(reason, "standby lagging"):
				advisory = append(advisory, fmt.Sprintf(
					"shard %d primary: standby lagging (%d records behind)", i, prim.replLag))
			case strings.Contains(reason, "standby disconnected"):
				advisory = append(advisory, fmt.Sprintf("shard %d primary: standby disconnected", i))
			}
		}
		sh.mu.Unlock()
		if !any {
			reasons = append(reasons, fmt.Sprintf("shard %d has no live member", i))
		}
		if hints > 0 {
			reasons = append(reasons, fmt.Sprintf("shard %d has %d hinted batches", i, hints))
		}
	}
	status := http.StatusOK
	if len(reasons) > 0 {
		status = http.StatusServiceUnavailable
	}
	ready := len(reasons) == 0
	reasons = append(reasons, advisory...)
	rwriteJSON(w, status, map[string]any{"ready": ready, "reasons": reasons})
}

// handleDebugCluster is the one-stop human-readable cluster summary: every
// member's role, liveness, readiness reasons and replication lag, plus each
// shard's hint depth and bid watermark.
func (r *Router) handleDebugCluster(w http.ResponseWriter, req *http.Request) {
	shards := make([]map[string]any, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.Lock()
		members := make([]map[string]any, len(sh.members))
		for j, m := range sh.members {
			role := "standby"
			if j == sh.primary {
				role = "primary"
			}
			reasons := m.lastReasons
			if reasons == nil {
				reasons = []string{}
			}
			members[j] = map[string]any{
				"url": m.url, "role": role, "alive": m.alive, "misses": m.misses,
				"ready": m.lastReady, "reasons": reasons,
				"repl_lag_records": m.replLag,
			}
		}
		shards[i] = map[string]any{
			"id": sh.id, "members": members, "primary": sh.primary,
			"hints": len(sh.hints), "next_bid": sh.nextBid,
			"breaker": sh.breaker.State().String(),
		}
		sh.mu.Unlock()
	}
	rwriteJSON(w, http.StatusOK, map[string]any{
		"shards":    shards,
		"failovers": r.m.Counter("router_failovers_total").Value(),
	})
}

// handleMetrics serves the router's own registry; with ?federate=1 it also
// scrapes every cluster member and merges the expositions (federate.go).
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("federate") == "1" {
		r.handleFederate(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.m.WritePrometheus(w)
}

// ---------------------------------------------------------------------------
// Probing and failover

func (r *Router) probeLoop() {
	defer r.wg.Done()
	// First round immediately: the router should know its cluster before the
	// first request, not one interval later.
	for {
		for _, sh := range r.shards {
			r.probeShard(sh)
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.ProbeInterval):
		}
	}
}

// probeResult is what one /readyz round-trip learned about a member.
type probeResult struct {
	up        bool
	walBroken bool
	ready     bool
	reasons   []string
	replLag   uint64
	rtt       time.Duration
}

// probeMember is one /readyz round-trip. Any HTTP response means the process
// is up (a 503 is a server saying "degraded", not a corpse); only transport
// errors are misses. walBroken is surfaced separately: a primary whose log
// broke cannot take writes, which is failover-worthy even though it answers.
// The full ReadyStatus (reasons, repl lag) is cached on the member for
// /debug/cluster and the router's own /readyz.
func (r *Router) probeMember(m *member) probeResult {
	if err := r.cfg.Injector.Err(faultinject.PointProbeTimeout); err != nil {
		return probeResult{}
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/readyz", nil)
	if err != nil {
		return probeResult{}
	}
	resp, err := r.client.Do(hr)
	if err != nil {
		return probeResult{}
	}
	defer resp.Body.Close()
	var st serve.ReadyStatus
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st)
	res := probeResult{
		up: true, ready: st.Ready, reasons: st.Reasons,
		replLag: st.ReplLagRecords, rtt: time.Since(start),
	}
	for _, reason := range st.Reasons {
		if strings.Contains(reason, "wal broken") {
			res.walBroken = true
		}
	}
	return res
}

func (r *Router) probeShard(sh *shard) {
	// Probe outside the lock — a probe is a network round-trip and the lock
	// gates the ingest path.
	results := make([]probeResult, len(sh.members))
	for i, m := range sh.members {
		results[i] = r.probeMember(m)
	}

	sh.mu.Lock()
	label := r.shardLabel(sh.id)
	aliveCount := 0
	for i, m := range sh.members {
		if results[i].up {
			m.alive = true
			m.misses = 0
			aliveCount++
			m.lastReady = results[i].ready
			m.lastReasons = results[i].reasons
			m.replLag = results[i].replLag
			r.m.GaugeWith("router_probe_rtt_seconds",
				map[string]string{"shard": strconv.Itoa(sh.id), "member": m.url}).
				Set(results[i].rtt.Seconds())
		} else {
			m.misses++
			r.m.Counter("router_probe_misses_total").Inc()
			if m.misses >= r.cfg.ProbeMisses {
				m.alive = false
				m.lastReady = false
				m.lastReasons = nil
				m.replLag = 0
			}
		}
	}
	r.m.GaugeWith("router_shard_alive_members", label).Set(float64(aliveCount))

	prim := sh.members[sh.primary]
	stby := sh.standbyIdx()
	primDead := prim.misses >= r.cfg.ProbeMisses
	primBroken := results[sh.primary].up && results[sh.primary].walBroken
	needFailover := (primDead || primBroken) && stby >= 0 && sh.members[stby].alive

	// Sync the bid floor once we can see the writable member: a restarted
	// router must not reuse bids the shard has already applied.
	if !sh.bidSynced && prim.alive {
		if last, ok := r.fetchLastBid(prim.url); ok {
			if last > sh.nextBid {
				sh.nextBid = last
			}
			sh.bidSynced = true
		}
	}

	var promoteURL string
	if needFailover {
		promoteURL = sh.members[stby].url
		// Stop preferring the dead primary for reads right now, not at the
		// next breaker threshold.
		sh.breaker.Trip()
	}
	sh.mu.Unlock()

	if promoteURL != "" {
		r.failover(sh, stby, promoteURL)
	}

	// With a writable member up, drain any parked batches.
	sh.mu.Lock()
	canFlush := len(sh.hints) > 0 && sh.members[sh.primary].alive
	sh.mu.Unlock()
	if canFlush {
		r.flushHints(sh)
	}
}

// fetchLastBid reads a member's /stats last-applied bid (best-effort).
func (r *Router) fetchLastBid(base string) (uint64, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return 0, false
	}
	resp, err := r.client.Do(hr)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var st struct {
		LastBid uint64 `json:"last_bid"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return 0, false
	}
	return st.LastBid, true
}

// failover promotes the standby and swaps the shard's primary. The promote
// request is retried (the promote fault point fails the first attempt in
// chaos runs; a real standby can also drop one request while its receiver
// shuts the old stream down).
func (r *Router) failover(sh *shard, stby int, promoteURL string) {
	start := time.Now()
	label := r.shardLabel(sh.id)
	retry := load.Retry{Attempts: 3, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Obs: r.m}
	err := retry.Do("promote", func(int) error {
		if ferr := r.cfg.Injector.Err(faultinject.PointPromote); ferr != nil {
			return ferr
		}
		resp, err := r.client.Post(promoteURL+"/admin/promote", "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var body struct {
			Role     string `json:"role"`
			Promoted bool   `json:"promoted"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
			return err
		}
		// "promoted":false with role "primary" means an earlier attempt (or
		// operator) already won — that is success, not failure.
		if body.Role != "primary" {
			return fmt.Errorf("standby refused promotion (role %q)", body.Role)
		}
		return nil
	})
	if err != nil {
		if r.cfg.Logger != nil {
			r.cfg.Logger.Warn("failover failed", "shard", sh.id, "standby", promoteURL, "error", err.Error())
		}
		return
	}
	sh.mu.Lock()
	sh.primary = stby
	sh.members[sh.primary].misses = 0
	sh.members[sh.primary].alive = true
	sh.mu.Unlock()
	// The tripped breaker was about the old primary; the new one just
	// answered a promote, so reads may prefer it immediately.
	sh.breaker.RecordSuccess()
	elapsed := time.Since(start).Seconds()
	r.m.Counter("router_failovers_total").Inc()
	r.m.CounterWith("router_failovers_total_by_shard", label).Inc()
	r.m.GaugeWith("router_failover_seconds", label).Set(elapsed)
	if r.cfg.Logger != nil {
		r.cfg.Logger.Warn("failover complete", "shard", sh.id, "new_primary", promoteURL, "seconds", elapsed)
	}
}
