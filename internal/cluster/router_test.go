package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/serve"
)

// stubShard is a scripted shard member: it answers the router's probe,
// ingest, score, stats and promote routes, records what it saw, and can be
// killed and revived on the same address (the failover tests need a member
// that dies at the transport level, not one that answers 5xx).
type stubShard struct {
	t    *testing.T
	addr string

	mu           sync.Mutex
	srv          *http.Server
	role         string
	lastBid      uint64
	bids         []uint64
	batches      [][]serve.EventIn
	promoteCalls int
	ingestStatus int // forced /ingest status; 0 = behave normally
}

func newStubShard(t *testing.T, role string) *stubShard {
	t.Helper()
	s := &stubShard{t: t, role: role}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.serveOn(ln)
	t.Cleanup(s.Kill)
	return s
}

func (s *stubShard) url() string { return "http://" + s.addr }

func (s *stubShard) serveOn(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /score", s.handleScore)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rwriteJSON(w, http.StatusOK, map[string]any{"ready": true, "reasons": []string{}})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		rwriteJSON(w, http.StatusOK, map[string]any{"last_bid": s.lastBid})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP stub_last_bid The member's last applied batch id.\n")
		fmt.Fprintf(w, "# TYPE stub_last_bid gauge\n")
		// The shard label collides with the federation label on purpose —
		// the federation test asserts it is renamed exported_shard.
		fmt.Fprintf(w, "stub_last_bid{shard=\"local\"} %d\n", s.lastBid)
	})
	mux.HandleFunc("POST /admin/promote", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.promoteCalls++
		promoted := s.role == "standby"
		s.role = "primary"
		rwriteJSON(w, http.StatusOK, map[string]any{"role": s.role, "promoted": promoted})
	})
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln)
}

func (s *stubShard) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Events []serve.EventIn `json:"events"`
		Bid    uint64          `json:"bid"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rwriteJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ingestStatus != 0 {
		rwriteJSON(w, s.ingestStatus, map[string]any{"error": "scripted failure"})
		return
	}
	if s.role == "standby" {
		rwriteJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "standby", "code": "not_primary"})
		return
	}
	if req.Bid > 0 && req.Bid <= s.lastBid {
		rwriteJSON(w, http.StatusOK, map[string]any{"ingested": len(req.Events), "deduped": true})
		return
	}
	if req.Bid > 0 {
		s.lastBid = req.Bid
	}
	s.bids = append(s.bids, req.Bid)
	s.batches = append(s.batches, req.Events)
	rwriteJSON(w, http.StatusOK, map[string]any{"ingested": len(req.Events)})
}

func (s *stubShard) handleScore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pairs []serve.PairIn `json:"pairs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rwriteJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	// Score encodes the pair so the merge test can verify positions.
	scores := make([]float64, len(req.Pairs))
	for i, p := range req.Pairs {
		scores[i] = float64(p.Src)*1000 + float64(p.Dst)
	}
	rwriteJSON(w, http.StatusOK, map[string]any{"scores": scores, "stale": false})
}

// Kill drops the listener and every open connection; probes start failing at
// the transport level immediately.
func (s *stubShard) Kill() {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Revive rebinds the same address.
func (s *stubShard) Revive() {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		s.t.Fatalf("revive %s: %v", s.addr, err)
	}
	s.serveOn(ln)
}

func (s *stubShard) snapshot() (bids []uint64, batches [][]serve.EventIn, promotes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.bids...), append([][]serve.EventIn(nil), s.batches...), s.promoteCalls
}

// testRouter builds a fast-probing router over the given shards.
func testRouter(t *testing.T, inj *faultinject.Injector, shards ...ShardSpec) (*Router, *obs.Registry) {
	t.Helper()
	return testRouterCfg(t, RouterConfig{
		Shards:        shards,
		ProbeInterval: 10 * time.Millisecond,
		ProbeMisses:   2,
		Injector:      inj,
	})
}

func testRouterCfg(t *testing.T, cfg RouterConfig) (*Router, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.HintDepth = 8
	cfg.RequestTimeout = 2 * time.Second
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r, reg
}

func waitRouterReady(t *testing.T, h http.Handler) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rec.Code == http.StatusOK {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("router never became ready")
}

func routerPost(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func routerEvents(n int, baseTime float64) []map[string]any {
	events := make([]map[string]any, n)
	for i := range events {
		events[i] = map[string]any{"src": i % 20, "dst": 20 + i%20, "time": baseTime + float64(i)}
	}
	return events
}

func TestRouterSplitsIngestByOwner(t *testing.T) {
	a, b := newStubShard(t, "solo"), newStubShard(t, "solo")
	r, _ := testRouter(t, nil, ShardSpec{Primary: a.url()}, ShardSpec{Primary: b.url()})
	h := r.Handler()
	waitRouterReady(t, h)

	events := routerEvents(24, 1000)
	rec := routerPost(t, h, "/ingest", map[string]any{"events": events})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Ingested int `json:"ingested"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ingested != 24 {
		t.Fatalf("ingested %d, want 24", resp.Ingested)
	}
	// Every event landed on its owner, in request order per shard.
	stubs := []*stubShard{a, b}
	var total int
	for si, s := range stubs {
		_, batches, _ := s.snapshot()
		var got []serve.EventIn
		for _, b := range batches {
			got = append(got, b...)
		}
		total += len(got)
		lastTime := -1.0
		for _, ev := range got {
			if Owner(ev.Src, ev.Dst, 2) != si {
				t.Fatalf("shard %d received foreign pair (%d,%d)", si, ev.Src, ev.Dst)
			}
			if ev.Time < lastTime {
				t.Fatalf("shard %d events out of order", si)
			}
			lastTime = ev.Time
		}
	}
	if total != 24 {
		t.Fatalf("shards received %d events total, want 24", total)
	}
}

func TestRouterScoreMergesAcrossShards(t *testing.T) {
	a, b := newStubShard(t, "solo"), newStubShard(t, "solo")
	r, _ := testRouter(t, nil, ShardSpec{Primary: a.url()}, ShardSpec{Primary: b.url()})
	h := r.Handler()
	waitRouterReady(t, h)

	pairs := []map[string]any{}
	for i := 0; i < 16; i++ {
		pairs = append(pairs, map[string]any{"src": i, "dst": 20 + i})
	}
	rec := routerPost(t, h, "/score", map[string]any{"pairs": pairs, "time": 2000})
	if rec.Code != http.StatusOK {
		t.Fatalf("score: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Scores []float64 `json:"scores"`
		Stale  bool      `json:"stale"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stale {
		t.Fatal("both primaries healthy; scores must be fresh")
	}
	if len(resp.Scores) != 16 {
		t.Fatalf("got %d scores, want 16", len(resp.Scores))
	}
	for i, s := range resp.Scores {
		if want := float64(i)*1000 + float64(20+i); s != want {
			t.Fatalf("score %d = %v, want %v (merge order broken)", i, s, want)
		}
	}
}

func TestRouterFailoverAndHintedHandoff(t *testing.T) {
	prim, stby := newStubShard(t, "primary"), newStubShard(t, "standby")
	inj := faultinject.New()
	// First promote attempt fails; the router's retry must absorb it.
	inj.ArmErr(faultinject.PointPromote, fmt.Errorf("injected promote failure"), 1)
	// A wider miss window than the default keeps the outage observable: the
	// hinted ingests and the stale score below must land before failover.
	r, reg := testRouterCfg(t, RouterConfig{
		Shards:        []ShardSpec{{Primary: prim.url(), Standby: stby.url()}},
		ProbeInterval: 50 * time.Millisecond,
		ProbeMisses:   3,
		Injector:      inj,
	})
	h := r.Handler()
	waitRouterReady(t, h)

	if rec := routerPost(t, h, "/ingest", map[string]any{"events": routerEvents(4, 1000)}); rec.Code != http.StatusOK {
		t.Fatalf("healthy ingest: %d %s", rec.Code, rec.Body)
	}

	prim.Kill()

	// Writes during the outage are hinted, never 5xx.
	for i := 0; i < 2; i++ {
		rec := routerPost(t, h, "/ingest", map[string]any{"events": routerEvents(4, float64(2000+100*i))})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("outage ingest %d: status %d %s, want 202", i, rec.Code, rec.Body)
		}
	}
	// Reads survive via the standby, marked stale.
	rec := routerPost(t, h, "/score", map[string]any{"pairs": []map[string]any{{"src": 1, "dst": 21}}, "time": 3000})
	if rec.Code != http.StatusOK {
		t.Fatalf("outage score: %d %s", rec.Code, rec.Body)
	}
	var sc struct {
		Stale bool `json:"stale"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sc); err != nil {
		t.Fatal(err)
	}
	if !sc.Stale {
		t.Fatal("score served during outage must be marked stale")
	}

	// Failover: promote fires (after one injected failure), hints flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.Counter("router_failovers_total").Value() >= 1 &&
			reg.Counter("router_hint_flushed_total").Value() >= 2 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("failover did not complete: failovers=%d flushed=%d",
				reg.Counter("router_failovers_total").Value(),
				reg.Counter("router_hint_flushed_total").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := inj.Fired(faultinject.PointPromote); n != 1 {
		t.Fatalf("promote fault fired %d times, want 1", n)
	}
	if n := reg.Counter("router_hint_dropped_total").Value(); n != 0 {
		t.Fatalf("%d hints dropped during clean failover", n)
	}
	bids, batches, promotes := stby.snapshot()
	if promotes < 1 {
		t.Fatalf("standby promote calls = %d", promotes)
	}
	if len(batches) != 2 {
		t.Fatalf("standby received %d hinted batches, want 2", len(batches))
	}
	// Hints replay in bid order under the bids assigned at first send.
	if len(bids) != 2 || bids[0] >= bids[1] {
		t.Fatalf("hinted bids out of order: %v", bids)
	}

	// Post-failover writes go straight to the new primary.
	if rec := routerPost(t, h, "/ingest", map[string]any{"events": routerEvents(4, 5000)}); rec.Code != http.StatusOK {
		t.Fatalf("post-failover ingest: %d %s", rec.Code, rec.Body)
	}
	bids, _, _ = stby.snapshot()
	for i := 1; i < len(bids); i++ {
		if bids[i] <= bids[i-1] {
			t.Fatalf("bids not strictly increasing: %v", bids)
		}
	}
}

func TestRouterHintOverflowSheds(t *testing.T) {
	// A shard that was never up: reserve an address and leave it dead.
	dead := newStubShard(t, "solo")
	dead.Kill()
	r, reg := testRouter(t, nil, ShardSpec{Primary: dead.url()})
	h := r.Handler()
	// Let the prober mark it dead so ingest takes the hint path.
	time.Sleep(60 * time.Millisecond)

	codes := []int{}
	for i := 0; i < 10; i++ {
		rec := routerPost(t, h, "/ingest", map[string]any{"events": routerEvents(2, float64(1000+100*i))})
		codes = append(codes, rec.Code)
	}
	accepted, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d (codes %v)", c, codes)
		}
	}
	if accepted != 8 || shed != 2 { // HintDepth is 8 in testRouter
		t.Fatalf("accepted=%d shed=%d, want 8/2 (codes %v)", accepted, shed, codes)
	}
	if n := reg.Counter("router_hint_dropped_total").Value(); n != 2 {
		t.Fatalf("hint_dropped=%d, want 2", n)
	}
}

func TestRouterResyncsBidFloorFromStats(t *testing.T) {
	s := newStubShard(t, "solo")
	s.mu.Lock()
	s.lastBid = 50 // pretend a previous router already pushed 50 batches
	s.mu.Unlock()
	r, _ := testRouter(t, nil, ShardSpec{Primary: s.url()})
	h := r.Handler()
	waitRouterReady(t, h)

	// Give the prober a beat to complete the /stats sync.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r.shards[0].mu.Lock()
		synced := r.shards[0].bidSynced
		r.shards[0].mu.Unlock()
		if synced {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("bid floor never synced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec := routerPost(t, h, "/ingest", map[string]any{"events": routerEvents(2, 1000)}); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	bids, _, _ := s.snapshot()
	if len(bids) != 1 || bids[0] != 51 {
		t.Fatalf("restarted router must resume above the shard's bid floor; got %v, want [51]", bids)
	}
}

func TestRouterProbeTimeoutFaultTriggersFailover(t *testing.T) {
	prim, stby := newStubShard(t, "primary"), newStubShard(t, "standby")
	inj := faultinject.New()
	// Member probes run in member order each round; with one shard, odd hits
	// are the primary. Two forced misses cross ProbeMisses=2.
	inj.ArmErr(faultinject.PointProbeTimeout, fmt.Errorf("injected probe timeout"), 1, 3)
	r, reg := testRouter(t, inj, ShardSpec{Primary: prim.url(), Standby: stby.url()})
	_ = r
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("router_failovers_total").Value() < 1 {
		if !time.Now().Before(deadline) {
			t.Fatalf("probe-timeout fault did not trigger failover (fired %d)",
				inj.Fired(faultinject.PointProbeTimeout))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := inj.Fired(faultinject.PointProbeTimeout); n != 2 {
		t.Fatalf("probe fault fired %d times, want 2", n)
	}
	if _, _, promotes := stby.snapshot(); promotes < 1 {
		t.Fatal("standby was never promoted")
	}
	// The healthy-but-slandered old primary is still a fine read target; the
	// shard keeps serving with two live members and a new write side.
}
