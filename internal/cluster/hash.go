// Package cluster shards the serving path across primary/standby pairs: a
// rendezvous-hashing router (router.go) spreads node pairs over N shards and
// health-checks their members, while a WAL-shipping replication stream
// (sender.go / receiver.go) keeps each shard's standby a byte-exact prefix
// of its primary. The package sits strictly above internal/serve — serve
// exposes the hooks (serve.Replicator, promote, replica apply), cluster
// wires them over the network — so a solo serve process never pays for any
// of this.
package cluster

// Pair-aware consistent placement. Both endpoints of an edge event must land
// on the same shard — node memories update from the (src, dst) pair as a
// unit — so the hash key is the unordered pair, canonicalized lo‖hi. Shard
// choice is rendezvous (highest-random-weight) hashing: each shard scores
// score(key, shard) and the max wins, so adding or removing one shard moves
// only the keys that hashed to it, with no ring or token table to persist.

// PairKey canonicalizes an edge's endpoints into the placement key: the
// unordered pair packed lo-first, so (a,b) and (b,a) always route together.
func PairKey(src, dst int32) uint64 {
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(uint32(lo))<<32 | uint64(uint32(hi))
}

// splitmix64 is the 64-bit finalizer from Vigna's SplitMix64 — a cheap,
// well-dispersed mix for rendezvous scoring (no allocation, no tables).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the shard that owns the (src, dst) pair under rendezvous
// hashing over shards members. Deterministic across processes and restarts;
// shards must be ≥ 1.
func Owner(src, dst int32, shards int) int {
	if shards <= 1 {
		return 0
	}
	key := PairKey(src, dst)
	best, bestScore := 0, uint64(0)
	for s := 0; s < shards; s++ {
		if score := splitmix64(key ^ splitmix64(uint64(s)+1)); score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}
