package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/serve"
	"github.com/cascade-ml/cascade/internal/train"
)

// traceServe builds a minimally-trained serve.Server wired to a tracer whose
// Chrome output lands in buf — one simulated cluster process.
func traceServe(t *testing.T, buf *bytes.Buffer) *serve.Server {
	t.Helper()
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 300})
	tr, val := ds.Split(0.8)
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Val: val, ValBatch: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(1)
	cw := obs.NewChromeTrace(buf)
	t.Cleanup(func() { cw.Close() })
	tracer := obs.NewTracer(obs.TracerOptions{Chrome: cw})
	return serve.New(m, trainer.Predictor(), ds.NumNodes, serve.WithTracer(tracer))
}

// TestTraceSmoke is the `make tracesmoke` gate: one request through a traced
// 2-shard router must yield ONE distributed trace-id that appears in the
// router's Chrome trace and in every shard's, and the three per-process
// files must merge onto one timeline.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	var shardBuf0, shardBuf1, routerBuf bytes.Buffer
	ts0 := httptest.NewServer(traceServe(t, &shardBuf0).Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(traceServe(t, &shardBuf1).Handler())
	defer ts1.Close()

	routerChrome := obs.NewChromeTrace(&routerBuf)
	routerTracer := obs.NewTracer(obs.TracerOptions{Chrome: routerChrome})
	r, _ := testRouterCfg(t, RouterConfig{
		Shards:        []ShardSpec{{Primary: ts0.URL}, {Primary: ts1.URL}},
		ProbeInterval: 10 * time.Millisecond,
		ProbeMisses:   2,
		Tracer:        routerTracer,
	})
	h := r.Handler()
	waitRouterReady(t, h)

	// Enough distinct pairs that rendezvous hashing lands events on BOTH
	// shards; one ingest + one score, each a root span on the router.
	rec := routerPost(t, h, "/ingest", map[string]any{"events": routerEvents(40, 3e9)})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
	pairs := make([]map[string]any, 8)
	for i := range pairs {
		pairs[i] = map[string]any{"src": i, "dst": 20 + i}
	}
	rec = routerPost(t, h, "/score", map[string]any{"pairs": pairs, "time": 4e9})
	if rec.Code != http.StatusOK {
		t.Fatalf("score status %d: %s", rec.Code, rec.Body.String())
	}
	routerChrome.Close()

	merged, rep, err := obs.MergeChromeTraces([]obs.TraceFile{
		{Name: "router.trace", Data: routerBuf.Bytes()},
		{Name: "shard0.trace", Data: shardBuf0.Bytes()},
		{Name: "shard1.trace", Data: shardBuf1.Bytes()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Fatal("merged trace empty")
	}
	var evs []map[string]any
	if err := json.Unmarshal(merged, &evs); err != nil {
		t.Fatalf("merged output not valid JSON: %v", err)
	}

	// At least one trace-id must span the router and both shards — the
	// /ingest (or /score) request fanned out to every process.
	all3 := 0
	cross := 0
	for tid, procs := range rep.Traces {
		if len(procs) >= 2 {
			cross++
		}
		if len(procs) == 3 {
			all3++
		}
		if len(procs) > 0 && procs[0] != "router.trace" &&
			procs[len(procs)-1] != "router.trace" {
			// Sorted names: router.trace sorts before shardN.trace, so a
			// trace that touched the router has it first.
			t.Errorf("trace %s spans %v without the router", tid, procs)
		}
	}
	if all3 == 0 {
		t.Fatalf("no trace-id spans router + both shards; traces: %v", rep.Traces)
	}
	if cross < 2 {
		t.Fatalf("want >= 2 cross-process traces (ingest and score), got %d: %v", cross, rep.Traces)
	}
	if rep.Offsets["router.trace"] != 0 {
		t.Fatalf("router is not the offset reference: %+v", rep.Offsets)
	}
}
