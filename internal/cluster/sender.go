package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/wal"
)

// SenderConfig wires a replication sender to its primary and standby.
type SenderConfig struct {
	// Target is the standby receiver's TCP address (host:port).
	Target string
	// Log is the primary's WAL; committed frames are tailed out of it.
	Log *wal.Log
	// Snapshot produces a catch-up snapshot (serve.Server.ReplSnapshot) when
	// the standby is too far behind for frame shipping.
	Snapshot func() (uint64, []byte, error)
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RedialBackoff is the pause between reconnect attempts (default 250ms).
	RedialBackoff time.Duration
	// Metrics receives serve_repl_* series (nil-safe).
	Metrics *obs.Registry
	// Injector arms the repl/send fault point (nil disables).
	Injector *faultinject.Injector
	// Logger receives connection lifecycle events (nil for silent).
	Logger *slog.Logger
}

// Sender is the primary half of WAL shipping: it tails the primary's log for
// committed frames, streams them to the standby, and tracks the standby's
// cumulative durable ack. It implements serve.Replicator, so the serve layer
// can hold /ingest responses on WaitAcked (semi-synchronous replication)
// without knowing anything about the wire. Reconnection is the sender's job:
// the stream survives standby restarts, and a standby that fell behind the
// primary's compaction horizon is re-seeded with a snapshot.
type Sender struct {
	cfg SenderConfig

	mu        sync.Mutex
	ackCond   *sync.Cond
	acked     uint64
	connected bool
	stopped   bool
	stamps    []replStamp
	stop      chan struct{}
	wg        sync.WaitGroup
}

// replStamp pairs a shipped committed sequence with the wall clock at ship
// time — the sender half of the time-lag measurement (proto.go).
type replStamp struct {
	seq uint64
	at  time.Time
}

// maxStamps bounds the unacked-stamp ring; one stamp rides each flush, so
// even a deeply lagged standby needs only a handful in flight.
const maxStamps = 128

// NewSender starts the replication stream. Call Stop to tear it down.
func NewSender(cfg SenderConfig) (*Sender, error) {
	if cfg.Target == "" {
		return nil, errors.New("cluster: sender needs a target address")
	}
	if cfg.Log == nil {
		return nil, errors.New("cluster: sender needs the primary's WAL")
	}
	if cfg.Snapshot == nil {
		return nil, errors.New("cluster: sender needs a snapshot source")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 250 * time.Millisecond
	}
	s := &Sender{cfg: cfg, stop: make(chan struct{})}
	s.ackCond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// Stop shuts the stream down and releases every WaitAcked waiter.
func (s *Sender) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stop)
	s.ackCond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// AckedSeq is the highest sequence the standby has durably acknowledged.
func (s *Sender) AckedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Connected reports whether a standby is currently attached.
func (s *Sender) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}

// WaitAcked blocks until the standby has acknowledged seq or the timeout
// expires. The caller (serve's /ingest) treats a timeout as "degrade to
// async", not as a write failure.
func (s *Sender) WaitAcked(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.ackCond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.acked < seq {
		if s.stopped {
			return errors.New("cluster: sender stopped")
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("cluster: ack for seq %d not received within %v", seq, timeout)
		}
		s.ackCond.Wait()
	}
	return nil
}

func (s *Sender) setConnected(up bool) {
	s.mu.Lock()
	s.connected = up
	s.mu.Unlock()
	v := 0.0
	if up {
		v = 1
	}
	s.cfg.Metrics.Gauge("serve_repl_connected").Set(v)
}

// recordStamp remembers that committed seq was on the wire at time at; the
// matching ack turns it into serve_repl_ack_lag_seconds.
func (s *Sender) recordStamp(seq uint64, at time.Time) {
	s.mu.Lock()
	if len(s.stamps) >= maxStamps {
		copy(s.stamps, s.stamps[1:])
		s.stamps = s.stamps[:len(s.stamps)-1]
	}
	s.stamps = append(s.stamps, replStamp{seq: seq, at: at})
	s.mu.Unlock()
}

func (s *Sender) observeAck(seq uint64) {
	now := time.Now()
	s.mu.Lock()
	if seq > s.acked {
		s.acked = seq
		s.ackCond.Broadcast()
	}
	acked := s.acked
	// Consume every stamp the ack covers; the newest covered stamp is the
	// tightest bound on "how long does the standby take to durably hold
	// what the primary shipped".
	var newest time.Time
	keep := s.stamps[:0]
	for _, st := range s.stamps {
		if st.seq <= acked {
			if st.at.After(newest) {
				newest = st.at
			}
			continue
		}
		keep = append(keep, st)
	}
	s.stamps = keep
	s.mu.Unlock()
	s.cfg.Metrics.Gauge("serve_repl_acked_seq").Set(float64(acked))
	if committed := s.cfg.Log.CommittedSeq(); committed > acked {
		s.cfg.Metrics.Gauge("serve_repl_lag_records").Set(float64(committed - acked))
	} else {
		s.cfg.Metrics.Gauge("serve_repl_lag_records").Set(0)
	}
	if !newest.IsZero() {
		lag := now.Sub(newest).Seconds()
		if lag < 0 {
			lag = 0
		}
		s.cfg.Metrics.Gauge("serve_repl_ack_lag_seconds").Set(lag)
	}
}

// LagRecords reports how many committed records the standby has yet to ack.
func (s *Sender) LagRecords() uint64 {
	s.mu.Lock()
	acked := s.acked
	s.mu.Unlock()
	if committed := s.cfg.Log.CommittedSeq(); committed > acked {
		return committed - acked
	}
	return 0
}

func (s *Sender) closing() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// run is the connection supervisor: dial, stream until the session errors,
// back off, repeat. One session at a time; acks survive across sessions (the
// standby's durable state does not regress).
func (s *Sender) run() {
	defer s.wg.Done()
	first := true
	for !s.closing() {
		if !first {
			s.cfg.Metrics.Counter("serve_repl_reconnects_total").Inc()
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.RedialBackoff):
			}
		}
		first = false
		if err := s.session(); err != nil && !s.closing() {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("replication session ended", "target", s.cfg.Target, "error", err.Error())
			}
		}
	}
}

// session runs one connection: handshake, optional snapshot catch-up, then
// the frame-shipping loop, with a concurrent ack reader.
func (s *Sender) session() error {
	conn, err := net.DialTimeout("tcp", s.cfg.Target, s.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeHello(conn); err != nil {
		return err
	}
	nextSeq, err := readWelcome(conn)
	if err != nil {
		return err
	}
	s.setConnected(true)
	defer s.setConnected(false)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("replication connected", "target", s.cfg.Target, "standby_next_seq", nextSeq)
	}

	// The ack reader owns the receive direction. It doubles as the session's
	// failure detector: when the standby goes away, the read errors and we
	// close the conn, which unblocks the send loop.
	ackDone := make(chan error, 1)
	go func() {
		for {
			seq, err := readAckMsg(conn)
			if err != nil {
				ackDone <- err
				return
			}
			s.observeAck(seq)
		}
	}()
	defer conn.Close() // unblock the ack reader on exit

	w := bufio.NewWriterSize(conn, 256<<10)

	// Seed or re-seed: the standby asks to resume at nextSeq. If that frame
	// is still in the log, tail from there; if compaction dropped it — or the
	// standby is somehow ahead of us (it outlived a primary that lost its
	// disk) — ship a snapshot and resume above its watermark.
	last := nextSeq - 1
	tailer := s.cfg.Log.TailFrom(last)
	defer func() { tailer.Close() }()
	if nextSeq > s.cfg.Log.NextSeq() {
		seq, err := s.sendSnapshot(w)
		if err != nil {
			return err
		}
		tailer.Close()
		last = seq
		tailer = s.cfg.Log.TailFrom(last)
	}

	for {
		select {
		case err := <-ackDone:
			return fmt.Errorf("ack stream: %w", err)
		case <-s.stop:
			return nil
		default:
		}
		seq, payload, err := tailer.Next(time.Second)
		switch {
		case err == nil:
			if ferr := s.cfg.Injector.Err(faultinject.PointReplSend); ferr != nil {
				return fmt.Errorf("fault injected: %w", ferr)
			}
			frame := wal.EncodeFrame(seq, payload)
			if err := writeFrameMsg(w, frame); err != nil {
				return err
			}
			s.cfg.Metrics.Counter("serve_repl_frames_sent_total").Inc()
			s.cfg.Metrics.Counter("serve_repl_bytes_sent_total").Add(int64(len(frame)))
			// Flush when the log has nothing more ready: batches under load,
			// ships immediately when idle. A stamped ping rides every flush
			// so the time-lag gauges track under load, not just when idle.
			if s.cfg.Log.CommittedSeq() <= seq {
				now := time.Now()
				s.recordStamp(seq, now)
				if err := writePingMsg(w, seq, now.UnixNano()); err != nil {
					return err
				}
				if err := w.Flush(); err != nil {
					return err
				}
			}
		case errors.Is(err, wal.ErrTailTimeout):
			if err := w.Flush(); err != nil {
				return err
			}
			// Quiet stream: ping so the standby keeps acking (and we keep
			// proving the connection is alive), stamped with the committed
			// watermark so both lag gauges stay fresh while idle.
			now := time.Now()
			committed := s.cfg.Log.CommittedSeq()
			s.recordStamp(committed, now)
			if err := writePingMsg(w, committed, now.UnixNano()); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		case errors.Is(err, wal.ErrSeqGone):
			// Compaction outran the standby: re-seed with a snapshot.
			seq, serr := s.sendSnapshot(w)
			if serr != nil {
				return serr
			}
			tailer.Close()
			last = seq
			tailer = s.cfg.Log.TailFrom(last)
		case errors.Is(err, wal.ErrClosed):
			return nil
		default:
			return err
		}
	}
}

// sendSnapshot ships a catch-up snapshot and returns its watermark.
func (s *Sender) sendSnapshot(w *bufio.Writer) (uint64, error) {
	seq, data, err := s.cfg.Snapshot()
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := writeSnapshotMsg(w, seq, data); err != nil {
		return 0, err
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	s.recordStamp(seq, time.Now())
	s.cfg.Metrics.Counter("serve_repl_snapshots_sent_total").Inc()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("replication snapshot sent", "seq", seq, "bytes", len(data))
	}
	return seq, nil
}
