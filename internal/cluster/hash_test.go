package cluster

import "testing"

func TestPairKeySymmetric(t *testing.T) {
	if PairKey(3, 17) != PairKey(17, 3) {
		t.Fatal("pair key must be order-independent")
	}
	if PairKey(3, 17) == PairKey(3, 18) {
		t.Fatal("distinct pairs must not collide trivially")
	}
}

func TestOwnerPairAwareAndStable(t *testing.T) {
	for shards := 1; shards <= 5; shards++ {
		for src := int32(0); src < 40; src++ {
			for dst := int32(0); dst < 40; dst++ {
				a, b := Owner(src, dst, shards), Owner(dst, src, shards)
				if a != b {
					t.Fatalf("Owner(%d,%d,%d)=%d but reversed=%d", src, dst, shards, a, b)
				}
				if a < 0 || a >= shards {
					t.Fatalf("Owner(%d,%d,%d)=%d out of range", src, dst, shards, a)
				}
			}
		}
	}
	if Owner(5, 9, 1) != 0 {
		t.Fatal("single shard owns everything")
	}
}

func TestOwnerSpreadsLoad(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for src := int32(0); src < 100; src++ {
		for dst := int32(0); dst < 100; dst++ {
			counts[Owner(src, dst, shards)]++
		}
	}
	total := 100 * 100
	for s, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("shard %d owns %.1f%% of pairs; rendezvous should be near-uniform", s, 100*frac)
		}
	}
}
