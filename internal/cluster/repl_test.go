package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/serve"
	"github.com/cascade-ml/cascade/internal/train"
	"github.com/cascade-ml/cascade/internal/wal"
)

// replServer builds a deterministically-trained serve.Server with a WAL,
// mirroring the serve package's own test fixture: identical dataset and
// trainer seeds make two independently-built servers bitwise comparable.
func replServer(t *testing.T, cfg serve.WALConfig, opts ...serve.Option) *serve.Server {
	t.Helper()
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 600})
	tr, val := ds.Split(0.8)
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Val: val, ValBatch: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(2)
	s := serve.New(m, trainer.Predictor(), ds.NumNodes, append(opts, serve.WithWAL(cfg))...)
	if _, err := s.StartWAL(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseWAL() })
	return s
}

func replBatch(i int) []map[string]any {
	n := 3 + i%4
	events := make([]map[string]any, n)
	for j := 0; j < n; j++ {
		events[j] = map[string]any{
			"src":  (i*7 + j*3) % 30,
			"dst":  32 + (i*5+j*11)%30,
			"time": 1e7 + float64(i*16+j),
		}
	}
	return events
}

func replPost(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// statsFingerprint reads the state fingerprint a server reports on
// /stats?full=1 — the bitwise-equality criterion for replicated state.
func statsFingerprint(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/stats?full=1", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st struct {
		Fingerprint string `json:"state_fingerprint"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint == "" {
		t.Fatal("no state fingerprint in /stats?full=1")
	}
	return st.Fingerprint
}

// replPair wires a live primary→standby stream over real TCP and returns
// both servers plus the sender's metrics registry.
type replPair struct {
	primary, standby *serve.Server
	sender           *Sender
	receiver         *Receiver
	sendReg, recvReg *obs.Registry
	sendInj, recvInj *faultinject.Injector
}

func newReplPair(t *testing.T, primCfg, stbyCfg serve.WALConfig, opts serve.ReplOptions) *replPair {
	t.Helper()
	p := &replPair{
		sendReg: obs.NewRegistry(), recvReg: obs.NewRegistry(),
		sendInj: faultinject.New(), recvInj: faultinject.New(),
	}
	p.standby = replServer(t, stbyCfg, serve.WithStandby())
	p.primary = replServer(t, primCfg)
	var err error
	p.receiver, err = NewReceiver(ReceiverConfig{
		Addr: "127.0.0.1:0", State: p.standby,
		Metrics: p.recvReg, Injector: p.recvInj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.receiver.Stop)
	p.sender, err = NewSender(SenderConfig{
		Target: p.receiver.Addr(), Log: p.primary.WAL(), Snapshot: p.primary.ReplSnapshot,
		Metrics: p.sendReg, Injector: p.sendInj, RedialBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.sender.Stop)
	if err := p.primary.SetReplicator(p.sender, opts); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReplicationShipsFramesEndToEnd(t *testing.T) {
	primDir, stbyDir := t.TempDir(), t.TempDir()
	p := newReplPair(t,
		serve.WALConfig{Dir: primDir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1},
		serve.WALConfig{Dir: stbyDir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1},
		serve.ReplOptions{AckTimeout: 10 * time.Second},
	)
	ph, sh := p.primary.Handler(), p.standby.Handler()

	const batches = 6
	for i := 0; i < batches; i++ {
		rec := replPost(t, ph, "/ingest", map[string]any{"events": replBatch(i)})
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	// /ingest is semi-synchronous: once it returned, the standby acked, so
	// no polling is needed — the batches are on the standby's disk.
	if got := p.sender.AckedSeq(); got != batches {
		t.Fatalf("acked seq %d, want %d", got, batches)
	}
	if !p.sender.Connected() {
		t.Fatal("sender should report a live standby")
	}
	if err := wal.VerifyPrefix(stbyDir, primDir); err != nil {
		t.Fatalf("standby log is not a prefix of the primary's: %v", err)
	}
	if pf, sf := statsFingerprint(t, ph), statsFingerprint(t, sh); pf != sf {
		t.Fatalf("replicated state diverged: primary %s standby %s", pf, sf)
	}

	// The standby refuses direct writes until promoted...
	if rec := replPost(t, sh, "/ingest", map[string]any{"events": replBatch(batches)}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("standby accepted a write: %d", rec.Code)
	}
	// ...and serves reads throughout.
	if rec := replPost(t, sh, "/score", map[string]any{"pairs": []map[string]any{{"src": 1, "dst": 33}}, "time": 1e7 + 1e4}); rec.Code != http.StatusOK {
		t.Fatalf("standby score: %d %s", rec.Code, rec.Body)
	}

	// Promote: the standby becomes writable and continues the sequence the
	// primary left off — the failover contract.
	rec := replPost(t, sh, "/admin/promote", nil)
	var pr struct {
		Promoted bool   `json:"promoted"`
		Role     string `json:"role"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Role != "primary" {
		t.Fatalf("promote: %s", rec.Body)
	}
	if rec := replPost(t, sh, "/ingest", map[string]any{"events": replBatch(batches)}); rec.Code != http.StatusOK {
		t.Fatalf("post-promotion ingest: %d %s", rec.Code, rec.Body)
	}
	if got := p.standby.WALAppliedSeq(); got != batches+1 {
		t.Fatalf("promoted standby applied seq %d, want %d", got, batches+1)
	}
}

func TestReplicationSnapshotCatchUp(t *testing.T) {
	primDir, stbyDir := t.TempDir(), t.TempDir()
	// Aggressive compaction: by the time the standby attaches, the early
	// frames are gone and only a snapshot can seed it.
	primary := replServer(t, serve.WALConfig{Dir: primDir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: 2})
	ph := primary.Handler()
	const preBatches = 80
	for i := 0; i < preBatches; i++ {
		rec := replPost(t, ph, "/ingest", map[string]any{"events": replBatch(i)})
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	// Sanity: frame 1 must be unreachable, or this test proves nothing.
	tl := primary.WAL().TailFrom(0)
	if _, _, err := tl.Next(10 * time.Millisecond); !errors.Is(err, wal.ErrSeqGone) {
		t.Fatalf("tail from 0 after compaction = %v, want ErrSeqGone", err)
	}
	tl.Close()

	standby := replServer(t, serve.WALConfig{Dir: stbyDir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1}, serve.WithStandby())
	recvReg := obs.NewRegistry()
	receiver, err := NewReceiver(ReceiverConfig{Addr: "127.0.0.1:0", State: standby, Metrics: recvReg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(receiver.Stop)
	sendReg := obs.NewRegistry()
	sender, err := NewSender(SenderConfig{
		Target: receiver.Addr(), Log: primary.WAL(), Snapshot: primary.ReplSnapshot,
		Metrics: sendReg, RedialBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sender.Stop)
	if err := primary.SetReplicator(sender, serve.ReplOptions{AckTimeout: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}

	// The next ingest blocks on the standby's ack, which requires the whole
	// catch-up (snapshot install + this frame) to have happened.
	rec := replPost(t, ph, "/ingest", map[string]any{"events": replBatch(preBatches)})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-attach ingest: %d %s", rec.Code, rec.Body)
	}
	if n := sendReg.Counter("serve_repl_snapshots_sent_total").Value(); n < 1 {
		t.Fatalf("snapshots sent = %d, want ≥ 1", n)
	}
	if n := recvReg.Counter("serve_repl_snapshots_received_total").Value(); n < 1 {
		t.Fatalf("snapshots received = %d, want ≥ 1", n)
	}
	if got, want := standby.WALAppliedSeq(), primary.WALAppliedSeq(); got != want {
		t.Fatalf("standby applied %d, primary %d", got, want)
	}
	if pf, sf := statsFingerprint(t, ph), statsFingerprint(t, standby.Handler()); pf != sf {
		t.Fatalf("caught-up state diverged: primary %s standby %s", pf, sf)
	}
}

func TestReplicationFaultPoints(t *testing.T) {
	primDir, stbyDir := t.TempDir(), t.TempDir()
	p := newReplPair(t,
		serve.WALConfig{Dir: primDir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1},
		serve.WALConfig{Dir: stbyDir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1},
		serve.ReplOptions{AckTimeout: 10 * time.Second},
	)
	ph := p.primary.Handler()

	// repl/send: the first frame send aborts the session. The sender must
	// reconnect and re-ship; the ingest ack just arrives a beat later.
	p.sendInj.ArmErr(faultinject.PointReplSend, fmt.Errorf("injected send failure"), 1)
	rec := replPost(t, ph, "/ingest", map[string]any{"events": replBatch(0)})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest through send fault: %d %s", rec.Code, rec.Body)
	}
	if n := p.sendInj.Fired(faultinject.PointReplSend); n != 1 {
		t.Fatalf("send fault fired %d times, want 1", n)
	}
	if n := p.sendReg.Counter("serve_repl_reconnects_total").Value(); n < 1 {
		t.Fatalf("reconnects = %d, want ≥ 1", n)
	}
	if got := p.sender.AckedSeq(); got != 1 {
		t.Fatalf("acked %d after send-fault recovery, want 1", got)
	}

	// repl/ack: the standby applies and syncs but swallows the ack. The
	// sender's keepalive ping solicits a fresh (cumulative) ack, so the
	// stream heals without resending data.
	p.recvInj.ArmErr(faultinject.PointReplAck, fmt.Errorf("injected ack suppression"), 1)
	rec = replPost(t, ph, "/ingest", map[string]any{"events": replBatch(1)})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest through ack fault: %d %s", rec.Code, rec.Body)
	}
	if n := p.recvInj.Fired(faultinject.PointReplAck); n != 1 {
		t.Fatalf("ack fault fired %d times, want 1", n)
	}
	if got := p.sender.AckedSeq(); got != 2 {
		t.Fatalf("acked %d after ack-fault recovery, want 2", got)
	}
	if err := wal.VerifyPrefix(stbyDir, primDir); err != nil {
		t.Fatalf("logs diverged across fault recovery: %v", err)
	}
	if pf, sf := statsFingerprint(t, ph), statsFingerprint(t, p.standby.Handler()); pf != sf {
		t.Fatalf("state diverged across fault recovery: primary %s standby %s", pf, sf)
	}
}

func TestReplicationTimeLagGauges(t *testing.T) {
	// The primary stamps a wall-clock commit time onto every shipped
	// watermark (the 'P' ping frame); the standby turns it into
	// serve_repl_apply_lag_seconds, the primary's ack path into
	// serve_repl_ack_lag_seconds. Both must be live after a few batches,
	// alongside the serve_repl_lag_records backlog gauge.
	p := newReplPair(t,
		serve.WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1},
		serve.WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1},
		serve.ReplOptions{AckTimeout: 10 * time.Second},
	)
	ph := p.primary.Handler()
	for i := 0; i < 4; i++ {
		if rec := replPost(t, ph, "/ingest", map[string]any{"events": replBatch(i)}); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}

	// The stamped ping rides the flush after the frames; give the pipeline a
	// beat to complete the stamp→apply→ack round trip on both registries.
	deadline := time.Now().Add(5 * time.Second)
	for {
		applySet := p.recvReg.Gauge("serve_repl_apply_lag_seconds").Value() > 0
		ackSet := p.sendReg.Gauge("serve_repl_ack_lag_seconds").Value() > 0
		if applySet && ackSet {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag gauges never set: apply=%v ack=%v",
				p.recvReg.Gauge("serve_repl_apply_lag_seconds").Value(),
				p.sendReg.Gauge("serve_repl_ack_lag_seconds").Value())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Sanity bounds: a loopback round trip is well under a minute; a stamp
	// from the future would read as (clamped) zero.
	if lag := p.recvReg.Gauge("serve_repl_apply_lag_seconds").Value(); lag > 60 {
		t.Fatalf("apply lag %v s is implausible on loopback", lag)
	}
	if lag := p.sendReg.Gauge("serve_repl_ack_lag_seconds").Value(); lag > 60 {
		t.Fatalf("ack lag %v s is implausible on loopback", lag)
	}
	// Caught up: the record backlog gauge reads 0.
	if backlog := p.sendReg.Gauge("serve_repl_lag_records").Value(); backlog != 0 {
		t.Fatalf("serve_repl_lag_records = %v after full ack", backlog)
	}
	if got := p.sender.LagRecords(); got != 0 {
		t.Fatalf("LagRecords() = %d after full ack", got)
	}
}
