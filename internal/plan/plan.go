// Package plan captures the prediction-head tape of one eagerly executed
// training batch into a compiled Plan: a fixed instruction program over
// statically allocated output and gradient slabs. Steady-state replay runs
// the same kernels as the eager tape — through the same GEMM entry points
// and elementwise loops — but performs zero tape-node allocations, zero
// arena size-class lookups, and fuses adjacent element-wise chains
// (matmul→addrow→activation into one linear kernel, gathers into the
// concat that consumes them) into single-loop instructions.
//
// Bit-exactness contract (shared with internal/tensor/fused.go): a compiled
// Plan's forward value, loss, logits, and every gradient it accumulates into
// boundary and parameter tensors are bitwise identical to the eager tape it
// captured. Three invariants make that hold:
//
//  1. Capture order is a DFS post-order over all inputs with the boundary
//     embedding treated as a leaf — exactly the order tensor.topoSort
//     produces for the gradient-bearing subgraph (constant subtrees contain
//     no gradient nodes, so pruning them never reorders gradient nodes).
//     Backward executes the instruction list strictly reversed, so every
//     shared gradient buffer (parameter grads, the boundary grad) receives
//     its accumulations in the eager schedule's order.
//  2. Static gradient slabs are zeroed before each backward, replicating the
//     pool-zeroed buffers eager backFns allocate; zero-then-accumulate
//     launders −0 to +0 identically.
//  3. Fused kernels follow the proofs in fused.go: skipped identity copies
//     are bitwise neutral because their sources are already laundered, and
//     GEMMs keep the eager entry points (MatMulInto, MatMulTransBAccum,
//     MatMulTransAAccum) so blocking and parallel splits round identically.
package plan

import (
	"fmt"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// refKind discriminates where an instruction operand lives.
type refKind uint8

const (
	// refSlot is a static slab owned by the plan (an intermediate value).
	refSlot refKind = iota
	// refBoundary is the per-batch boundary embedding passed to Apply.
	refBoundary
	// refParam is a stable parameter tensor captured by pointer.
	refParam
	// refTargets is the per-batch target matrix passed to Apply.
	refTargets
)

// ref names one operand of an instruction.
type ref struct {
	kind  refKind
	slot  int            // refSlot: index into Plan.slots
	param *tensor.Tensor // refParam: stable parameter pointer
}

// instKind is the opcode of a compiled instruction.
type instKind uint8

const (
	iGather     instKind = iota // out[r] = a[idx[r]]
	iConcatCols                 // out = [parts...] column-wise
	iGatherCat                  // concat with trailing gathers folded in
	iConcatRows                 // out = [parts...] row-wise
	iMatMul                     // out = a·b
	iAddRow                     // out = a + row b
	iAct                        // out = act(a)
	iLinear                     // out = act(a·b + row c), fused
	iBCE                        // loss = meanBCE(a, targets)
)

// part is one segment of a concat instruction. idx is non-nil when the
// segment is a folded gather: rows are pulled straight from src by index.
type part struct {
	src  ref
	cols int
	idx  []int
}

// inst is one compiled instruction. Operand roles by kind: iGather reads a;
// iMatMul reads a·b; iAddRow reads a (matrix) and b (row); iAct reads a;
// iLinear reads a (input), b (weight), c (bias); iBCE reads a (logits).
type inst struct {
	kind  instKind
	out   int // slot index; -1 for iBCE (writes the loss slab)
	a     ref
	b     ref
	c     ref
	act   tensor.Act
	idx   []int
	parts []part
	n     float32        // iBCE: element count divisor
	gpre  *tensor.Matrix // iLinear with activation: pre-activation grad scratch
}

// slot is one captured intermediate: its static output slab and, when the
// eager node required grad, its static gradient slab.
type slot struct {
	rows, cols int
	req        bool
	out        *tensor.Matrix
	grad       *tensor.Matrix
	consumers  int
	dead       bool // fused into a neighbouring instruction
}

// Plan is a compiled prediction-head program keyed to one batch shape. It is
// not safe for concurrent use; the trainer replays plans on the training
// goroutine only.
type Plan struct {
	insts []inst
	slots []slot

	node     *tensor.Tensor // rearm-able tape node returned by Apply
	lossSlab *tensor.Matrix // 1×1 static loss value
	lossGrad *tensor.Matrix // 1×1 static loss grad (seeded by Backward)
	logits   ref            // slot holding the pre-loss logits

	hRows, hCols int
	hReq         bool
	tRows, tCols int

	curH    *tensor.Tensor
	targets *tensor.Matrix
	inBuf   [1]*tensor.Tensor
	back    func()

	eagerOps int
	fusedOps int
}

// Compile captures the tape between boundary (exclusive) and loss
// (inclusive) into a Plan. loss must be a 1×1 "bcelogits" node whose targets
// input is a constant leaf; every op between boundary and loss must be one
// of the head primitives (gather, column/row concat, matmul, addrow,
// relu/sigmoid/tanh, bcelogits). Any other op, or a stray constant leaf
// inside the head, is a compile error — the caller falls back to eager
// execution for that shape.
func Compile(loss, boundary *tensor.Tensor) (*Plan, error) {
	if loss == nil || boundary == nil {
		return nil, fmt.Errorf("plan: nil capture root")
	}
	if loss.Op() != "bcelogits" {
		return nil, fmt.Errorf("plan: loss op %q, want bcelogits", loss.Op())
	}
	ins := loss.Inputs()
	if len(ins) != 2 {
		return nil, fmt.Errorf("plan: bcelogits with %d inputs", len(ins))
	}
	tgt := ins[1]
	if tgt.Op() != "const" || len(tgt.Inputs()) != 0 {
		return nil, fmt.Errorf("plan: targets must be a const leaf, got %q", tgt.Op())
	}
	p := &Plan{
		hRows: boundary.Value.Rows,
		hCols: boundary.Value.Cols,
		hReq:  boundary.RequiresGrad(),
		tRows: tgt.Value.Rows,
		tCols: tgt.Value.Cols,
	}
	c := &capturer{p: p, boundary: boundary, slotOf: map[*tensor.Tensor]int{}}
	lref, err := c.visit(ins[0])
	if err != nil {
		return nil, err
	}
	if lref.kind != refSlot {
		return nil, fmt.Errorf("plan: logits must be a computed node")
	}
	p.logits = lref
	p.insts = append(p.insts, inst{
		kind: iBCE, out: -1, a: lref,
		n: float32(p.slots[lref.slot].rows * p.slots[lref.slot].cols),
	})
	p.eagerOps = len(p.insts)

	p.fuseLinear()
	p.foldGathers()
	p.allocate()

	p.lossSlab = tensor.NewStatic(1, 1)
	p.lossGrad = tensor.NewStatic(1, 1)
	p.node = tensor.NewPlanNode("plan")
	p.node.Grad = p.lossGrad
	p.node.SetMeta(p.cost())
	p.back = p.backward
	return p, nil
}

// capturer walks the eager tape in all-inputs DFS post-order.
type capturer struct {
	p        *Plan
	boundary *tensor.Tensor
	slotOf   map[*tensor.Tensor]int
}

func (c *capturer) visit(t *tensor.Tensor) (ref, error) {
	if t == c.boundary {
		return ref{kind: refBoundary}, nil
	}
	if i, ok := c.slotOf[t]; ok {
		c.p.slots[i].consumers++
		return ref{kind: refSlot, slot: i}, nil
	}
	switch t.Op() {
	case "var":
		return ref{kind: refParam, param: t}, nil
	case "const":
		return ref{}, fmt.Errorf("plan: stray const leaf in head")
	}
	var in inst
	tIn := t.Inputs()
	switch t.Op() {
	case "gather":
		idx, ok := t.Meta().([]int)
		if !ok || len(tIn) != 1 {
			return ref{}, fmt.Errorf("plan: gather without index meta")
		}
		src, err := c.visit(tIn[0])
		if err != nil {
			return ref{}, err
		}
		in.kind = iGather
		in.a = src
		in.idx = append([]int(nil), idx...)
	case "concat", "concatrows":
		if t.Op() == "concat" {
			in.kind = iConcatCols
		} else {
			in.kind = iConcatRows
		}
		for _, x := range tIn {
			src, err := c.visit(x)
			if err != nil {
				return ref{}, err
			}
			in.parts = append(in.parts, part{src: src, cols: x.Value.Cols})
		}
	case "matmul", "addrow":
		if t.Op() == "matmul" {
			in.kind = iMatMul
		} else {
			in.kind = iAddRow
		}
		a, err := c.visit(tIn[0])
		if err != nil {
			return ref{}, err
		}
		b, err := c.visit(tIn[1])
		if err != nil {
			return ref{}, err
		}
		in.a, in.b = a, b
	case "relu", "sigmoid", "tanh":
		src, err := c.visit(tIn[0])
		if err != nil {
			return ref{}, err
		}
		in.kind = iAct
		in.a = src
		switch t.Op() {
		case "relu":
			in.act = tensor.ActReLU
		case "sigmoid":
			in.act = tensor.ActSigmoid
		default:
			in.act = tensor.ActTanh
		}
	default:
		return ref{}, fmt.Errorf("plan: unsupported op %q in head", t.Op())
	}
	// The slot index is assigned only now: visiting the inputs above has
	// already appended their slots, making this node's post-order position.
	in.out = len(c.p.slots)
	c.p.slots = append(c.p.slots, slot{
		rows: t.Value.Rows, cols: t.Value.Cols, req: t.RequiresGrad(), consumers: 1,
	})
	c.p.insts = append(c.p.insts, in)
	c.slotOf[t] = in.out
	return ref{kind: refSlot, slot: in.out}, nil
}

// fuseLinear peephole-fuses matmul→addrow[→activation] runs into single
// iLinear instructions. Post-order emission makes the chain adjacent
// whenever each intermediate has a single consumer, which is also exactly
// the condition under which skipping its materialization is bitwise neutral
// (the fused backward follows LinearActT's proof in fused.go).
func (p *Plan) fuseLinear() {
	var out []inst
	for i := 0; i < len(p.insts); i++ {
		in := p.insts[i]
		if in.kind != iMatMul || i+1 >= len(p.insts) {
			out = append(out, in)
			continue
		}
		nx := p.insts[i+1]
		if nx.kind != iAddRow || nx.a.kind != refSlot || nx.a.slot != in.out ||
			p.slots[in.out].consumers != 1 {
			out = append(out, in)
			continue
		}
		lin := inst{kind: iLinear, out: nx.out, a: in.a, b: in.b, c: nx.b, act: tensor.ActNone}
		p.slots[in.out].dead = true
		i++
		if i+1 < len(p.insts) {
			ax := p.insts[i+1]
			if ax.kind == iAct && ax.a.kind == refSlot && ax.a.slot == lin.out &&
				p.slots[lin.out].consumers == 1 {
				p.slots[lin.out].dead = true
				lin.out = ax.out
				lin.act = ax.act
				i++
			}
		}
		p.fusedOps++
		out = append(out, lin)
	}
	p.insts = out
}

// foldGathers folds trailing gather instructions into the column-concat that
// consumes them: forward copies rows straight from the gather source into
// the concat slab, backward scatters the concat gradient block straight
// back. Folding is restricted to a trailing run of single-consumer gathers
// emitted immediately before the concat, so the reversed instruction list
// still accumulates into the shared source gradient in the eager order
// (concat block copies ascending, then folded scatters descending). The
// scatter reads the concat gradient directly: that slab is zero-then-
// accumulated, so it never holds −0 and the skipped per-gather intermediate
// is a laundered identity.
func (p *Plan) foldGathers() {
	for j := 1; j < len(p.insts); j++ {
		if p.insts[j].kind != iConcatCols {
			continue
		}
		parts := p.insts[j].parts
		k := j - 1
		folded := false
		for pi := len(parts) - 1; pi >= 0; pi-- {
			pr := parts[pi]
			if pr.src.kind != refSlot || p.slots[pr.src.slot].consumers != 1 {
				break
			}
			if k < 0 || p.insts[k].kind != iGather || p.insts[k].out != pr.src.slot {
				break
			}
			parts[pi].src = p.insts[k].a
			parts[pi].idx = p.insts[k].idx
			p.slots[pr.src.slot].dead = true
			folded = true
			k--
		}
		if folded {
			p.insts[j].kind = iGatherCat
			p.fusedOps++
			// Drop the folded gather instructions (positions k+1..j-1).
			p.insts = append(p.insts[:k+1], p.insts[j:]...)
			j = k + 1
		}
	}
}

// allocate assigns the static output and gradient slabs: every live slot's
// shape and size class is resolved once here, so replay performs no arena
// lookups at all. iLinear instructions with an activation additionally get a
// static pre-activation gradient scratch.
func (p *Plan) allocate() {
	for i := range p.slots {
		s := &p.slots[i]
		if s.dead {
			continue
		}
		s.out = tensor.NewStatic(s.rows, s.cols)
		if s.req {
			s.grad = tensor.NewStatic(s.rows, s.cols)
		}
	}
	for i := range p.insts {
		in := &p.insts[i]
		if in.kind == iLinear && in.act != tensor.ActNone && p.slots[in.out].req {
			in.gpre = tensor.NewStatic(p.slots[in.out].rows, p.slots[in.out].cols)
		}
	}
}

// cost summarizes the compiled program for the tape statistics a plan node
// reports through tensor.StatsOf (the device cost model consumes these).
func (p *Plan) cost() tensor.PlanCost {
	var c tensor.PlanCost
	note := func(rows int, flops float64) {
		c.Kernels++
		c.Flops += flops
		c.RowSum += int64(rows)
		if rows > c.MaxRows {
			c.MaxRows = rows
		}
	}
	for i := range p.insts {
		in := &p.insts[i]
		if in.kind == iBCE {
			note(1, 8*float64(in.n))
			continue
		}
		s := &p.slots[in.out]
		out := float64(s.rows * s.cols)
		switch in.kind {
		case iMatMul:
			note(s.rows, 2*out*float64(p.refCols(in.a)))
		case iLinear:
			note(s.rows, 2*out*float64(p.refCols(in.a))+9*out)
		case iAct:
			note(s.rows, 8*out)
		default:
			note(s.rows, out)
		}
	}
	return c
}

// refCols returns the column count of a value operand.
func (p *Plan) refCols(r ref) int {
	switch r.kind {
	case refSlot:
		return p.slots[r.slot].cols
	case refBoundary:
		return p.hCols
	case refParam:
		return r.param.Value.Cols
	default:
		return p.tCols
	}
}

// val resolves an operand's value matrix for the current Apply.
func (p *Plan) val(r ref) *tensor.Matrix {
	switch r.kind {
	case refSlot:
		return p.slots[r.slot].out
	case refBoundary:
		return p.curH.Value
	case refParam:
		return r.param.Value
	default:
		return p.targets
	}
}

// gradOf resolves an operand's gradient accumulator, or nil when the
// operand does not require grad — the same guard eager backFns apply.
func (p *Plan) gradOf(r ref) *tensor.Matrix {
	switch r.kind {
	case refSlot:
		return p.slots[r.slot].grad // nil when !req
	case refBoundary:
		if !p.hReq {
			return nil
		}
		return p.curH.EnsureGrad()
	case refParam:
		if !r.param.RequiresGrad() {
			return nil
		}
		return r.param.EnsureGrad()
	default:
		return nil
	}
}

// Apply replays the plan on this batch's boundary embedding and targets.
// It returns the rearmed loss node, or nil when the batch does not match
// the captured shape signature (the caller falls back to eager execution).
// The returned node plugs into the surrounding machinery unchanged:
// Backward runs the plan's backward closure (then the boundary's own tape),
// and FreeGraph releases the boundary subgraph plus any retained scratch
// while the plan's static slabs survive for the next replay.
func (p *Plan) Apply(h *tensor.Tensor, targets *tensor.Matrix) *tensor.Tensor {
	if h == nil || targets == nil ||
		h.Value.Rows != p.hRows || h.Value.Cols != p.hCols || h.RequiresGrad() != p.hReq ||
		targets.Rows != p.tRows || targets.Cols != p.tCols {
		return nil
	}
	p.curH = h
	p.targets = targets
	p.forward()
	if p.hReq {
		p.inBuf[0] = h
		p.node.Rearm(p.lossSlab, p.inBuf[:], p.back, false)
	} else {
		p.node.Rearm(p.lossSlab, nil, p.back, true)
	}
	return p.node
}

// Logits exposes the static logits slab of the latest Apply. Callers that
// outlive the batch must copy it; the next Apply overwrites it in place.
func (p *Plan) Logits() *tensor.Matrix { return p.slots[p.logits.slot].out }

// Node returns the plan's rearm-able tape node (the tensor Apply returns).
func (p *Plan) Node() *tensor.Tensor { return p.node }

// EagerOps returns the number of eager tape nodes the plan captured.
func (p *Plan) EagerOps() int { return p.eagerOps }

// Ops returns the number of compiled instructions after fusion.
func (p *Plan) Ops() int { return len(p.insts) }

// FusedOps returns the number of fusion rewrites applied at compile time.
func (p *Plan) FusedOps() int { return p.fusedOps }

// forward executes the instruction list into the static slabs. Every kernel
// is the eager op's own loop (or its proven-bitwise fused form), and every
// slab is fully overwritten, so no inter-batch state leaks through.
func (p *Plan) forward() {
	for i := range p.insts {
		in := &p.insts[i]
		switch in.kind {
		case iGather:
			tensor.GatherRowsInto(p.slots[in.out].out, p.val(in.a), in.idx)
		case iConcatCols, iGatherCat:
			out := p.slots[in.out].out
			off := 0
			for _, pt := range in.parts {
				src := p.val(pt.src)
				if pt.idx != nil {
					for r, ix := range pt.idx {
						copy(out.Row(r)[off:off+pt.cols], src.Row(ix))
					}
				} else {
					for r := 0; r < out.Rows; r++ {
						copy(out.Row(r)[off:off+pt.cols], src.Row(r))
					}
				}
				off += pt.cols
			}
		case iConcatRows:
			out := p.slots[in.out].out
			off := 0
			for _, pt := range in.parts {
				src := p.val(pt.src)
				copy(out.Data[off:off+len(src.Data)], src.Data)
				off += len(src.Data)
			}
		case iMatMul:
			tensor.MatMulInto(p.slots[in.out].out, p.val(in.a), p.val(in.b))
		case iAddRow:
			tensor.AddRowInto(p.slots[in.out].out, p.val(in.a), p.val(in.b))
		case iAct:
			tensor.ActInto(p.slots[in.out].out, p.val(in.a), in.act)
		case iLinear:
			out := p.slots[in.out].out
			tensor.MatMulInto(out, p.val(in.a), p.val(in.b))
			tensor.AddRowInto(out, out, p.val(in.c))
			tensor.ActInto(out, out, in.act)
		case iBCE:
			p.lossSlab.Data[0] = tensor.BCEForward(p.val(in.a), p.targets)
		}
	}
}

// backward is the plan node's backFn: Backward has already seeded the loss
// grad with 1. It zeroes the static gradient slabs (the eager pool-zeroed
// buffers) and runs the instruction list strictly reversed, so shared
// gradient accumulators — parameter grads, the boundary grad — see their
// writes in the exact order the eager reversed-DFS schedule produces.
func (p *Plan) backward() {
	for i := range p.slots {
		if g := p.slots[i].grad; g != nil {
			g.Zero()
		}
	}
	for i := len(p.insts) - 1; i >= 0; i-- {
		in := &p.insts[i]
		if in.kind != iBCE && !p.slots[in.out].req {
			continue // eager node had no backFn
		}
		switch in.kind {
		case iBCE:
			if lg := p.gradOf(in.a); lg != nil {
				g := p.lossGrad.Data[0] / in.n
				tensor.BCEBackwardAccum(lg, p.val(in.a), p.targets, g)
			}
		case iConcatRows:
			og := p.slots[in.out].grad
			off := 0
			for _, pt := range in.parts {
				n := p.refLen(pt.src)
				if tg := p.gradOf(pt.src); tg != nil {
					src := og.Data[off : off+n]
					for k, gv := range src {
						tg.Data[k] += gv
					}
				}
				off += n
			}
		case iConcatCols, iGatherCat:
			og := p.slots[in.out].grad
			// Non-folded blocks ascending (the eager concat backward)…
			off := 0
			for _, pt := range in.parts {
				if pt.idx == nil {
					if tg := p.gradOf(pt.src); tg != nil {
						for r := 0; r < og.Rows; r++ {
							grow := og.Row(r)[off : off+pt.cols]
							trow := tg.Row(r)
							for j := range grow {
								trow[j] += grow[j]
							}
						}
					}
				}
				off += pt.cols
			}
			// …then folded scatters descending (the gathers' own backwards,
			// which ran after the concat's in the eager reversed schedule).
			off = og.Cols
			for pi := len(in.parts) - 1; pi >= 0; pi-- {
				pt := in.parts[pi]
				off -= pt.cols
				if pt.idx == nil {
					continue
				}
				if tg := p.gradOf(pt.src); tg != nil {
					for r, ix := range pt.idx {
						grow := og.Row(r)[off : off+pt.cols]
						trow := tg.Row(ix)
						for j := range grow {
							trow[j] += grow[j]
						}
					}
				}
			}
		case iMatMul:
			og := p.slots[in.out].grad
			if ag := p.gradOf(in.a); ag != nil {
				tensor.MatMulTransBAccum(ag, og, p.val(in.b))
			}
			if bg := p.gradOf(in.b); bg != nil {
				tensor.MatMulTransAAccum(bg, p.val(in.a), og)
			}
		case iAddRow:
			og := p.slots[in.out].grad
			if ag := p.gradOf(in.a); ag != nil {
				tensor.AxpyInto(ag, og, 1)
			}
			if vg := p.gradOf(in.b); vg != nil {
				tensor.ColSumsAccum(vg, og)
			}
		case iAct:
			if ag := p.gradOf(in.a); ag != nil {
				tensor.ActBackwardAccum(ag, p.slots[in.out].grad, p.slots[in.out].out, in.act)
			}
		case iLinear:
			og := p.slots[in.out].grad
			gpre := og
			if in.act != tensor.ActNone {
				in.gpre.Zero()
				tensor.ActBackwardAccum(in.gpre, og, p.slots[in.out].out, in.act)
				gpre = in.gpre
			}
			if bg := p.gradOf(in.c); bg != nil {
				tensor.ColSumsAccum(bg, gpre)
			}
			if ag := p.gradOf(in.a); ag != nil {
				tensor.MatMulTransBAccum(ag, gpre, p.val(in.b))
			}
			if wg := p.gradOf(in.b); wg != nil {
				tensor.MatMulTransAAccum(wg, p.val(in.a), gpre)
			}
		case iGather:
			if ag := p.gradOf(in.a); ag != nil {
				tensor.ScatterRowsAccum(ag, p.slots[in.out].grad, in.idx)
			}
		}
	}
}

// refLen returns the element count of a value operand.
func (p *Plan) refLen(r ref) int {
	switch r.kind {
	case refSlot:
		return p.slots[r.slot].rows * p.slots[r.slot].cols
	case refBoundary:
		return p.hRows * p.hCols
	case refParam:
		return len(r.param.Value.Data)
	default:
		return p.tRows * p.tCols
	}
}
