package plan

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// The golden tests replicate the trainer's prediction heads (train.go
// forwardPrepared) over a small fake embedding tape and pin the compiled
// plan to the eager tape bitwise: loss, logits, every parameter gradient,
// and the boundary gradient, across repeated replays with tape recycling in
// between.

func randMat(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewStatic(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func randTargets(rng *rand.Rand, rows int) *tensor.Matrix {
	m := tensor.NewStatic(rows, 1)
	for i := range m.Data {
		if rng.Intn(2) == 1 {
			m.Data[i] = 1
		}
	}
	return m
}

// embedLike builds a tiny gradient-bearing "embedding" tape so the boundary
// tensor has an upstream subgraph, as it does under the real trainer.
func embedLike(x *tensor.Matrix, w0 *tensor.Tensor) *tensor.Tensor {
	return tensor.TanhT(tensor.MatMulT(tensor.Const(x), w0))
}

// linkHead replays forwardPrepared's link-prediction head: shared source
// gather, two concat+MLP branches, stacked logits, BCE loss.
func linkHead(pred *nn.MLP, h *tensor.Tensor, b int, targets *tensor.Matrix) (loss, logits *tensor.Tensor) {
	srcIdx := make([]int, b)
	dstIdx := make([]int, b)
	negIdx := make([]int, b)
	for i := 0; i < b; i++ {
		srcIdx[i], dstIdx[i], negIdx[i] = i, b+i, 2*b+i
	}
	hSrc := tensor.GatherRowsT(h, srcIdx)
	pos := pred.Forward(tensor.ConcatColsT(hSrc, tensor.GatherRowsT(h, dstIdx)))
	neg := pred.Forward(tensor.ConcatColsT(hSrc, tensor.GatherRowsT(h, negIdx)))
	logits = tensor.ConcatRowsT(pos, neg)
	return tensor.BCEWithLogitsT(logits, tensor.Const(targets)), logits
}

func requireBits(t *testing.T, name string, want, got *tensor.Matrix) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: nil matrix (want %v, got %v)", name, want, got)
	}
	if len(want.Data) != len(got.Data) {
		t.Fatalf("%s: length %d vs %d", name, len(want.Data), len(got.Data))
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s[%d]: eager %v (0x%08x) vs plan %v (0x%08x)",
				name, i, want.Data[i], math.Float32bits(want.Data[i]),
				got.Data[i], math.Float32bits(got.Data[i]))
		}
	}
}

type gradSnapshot struct {
	name string
	t    *tensor.Tensor
	want *tensor.Matrix
}

func snapshotGrads(t *testing.T, params []nn.Param) []gradSnapshot {
	t.Helper()
	out := make([]gradSnapshot, 0, len(params))
	for _, pm := range params {
		if pm.T.Grad == nil {
			t.Fatalf("param %s: no gradient after eager backward", pm.Name)
		}
		out = append(out, gradSnapshot{name: pm.Name, t: pm.T, want: pm.T.Grad.Clone()})
	}
	return out
}

func TestPlanLinkHeadGolden(t *testing.T) {
	const d = 8
	for _, b := range []int{1, 3, 6} {
		rng := rand.New(rand.NewSource(42 + int64(b)))
		x := randMat(rng, 3*b, d)
		w0 := tensor.Var(randMat(rng, d, d))
		pred := nn.NewMLP(rng, nn.ActReLU, 2*d, d, 1)
		targets := randTargets(rng, 2*b)
		params := append([]nn.Param{{Name: "w0", T: w0}}, pred.Params()...)

		h1 := embedLike(x, w0)
		loss1, logits1 := linkHead(pred, h1, b, targets)
		pl, err := Compile(loss1, h1)
		if err != nil {
			t.Fatalf("b=%d: Compile: %v", b, err)
		}
		if pl.Ops() >= pl.EagerOps() || pl.FusedOps() == 0 {
			t.Fatalf("b=%d: no fusion: %d insts from %d eager ops (%d fusions)",
				b, pl.Ops(), pl.EagerOps(), pl.FusedOps())
		}
		loss1.Backward()
		wantLoss := math.Float32bits(loss1.Value.Data[0])
		wantLogits := logits1.Value.Clone()
		wantH := h1.Grad.Clone()
		grads := snapshotGrads(t, params)
		tensor.FreeGraph(loss1)

		// Two replays with tape recycling between: steady state must stay
		// bitwise pinned to the eager run.
		for round := 0; round < 2; round++ {
			for _, pm := range params {
				pm.T.Grad = nil
			}
			h := embedLike(x, w0)
			out := pl.Apply(h, targets)
			if out == nil {
				t.Fatalf("b=%d round %d: Apply returned nil on matching shape", b, round)
			}
			if got := math.Float32bits(out.Value.Data[0]); got != wantLoss {
				t.Fatalf("b=%d round %d: loss 0x%08x vs eager 0x%08x", b, round, got, wantLoss)
			}
			requireBits(t, "logits", wantLogits, pl.Logits())
			out.Backward()
			requireBits(t, "h.Grad", wantH, h.Grad)
			for _, gs := range grads {
				requireBits(t, gs.name, gs.want, gs.t.Grad)
			}
			tensor.FreeGraph(out)
		}
	}
}

func TestPlanClassHeadGolden(t *testing.T) {
	const d, b = 8, 5
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, b, d)
	w0 := tensor.Var(randMat(rng, d, d))
	pred := nn.NewMLP(rng, nn.ActReLU, d, d, 1)
	targets := randTargets(rng, b)
	params := append([]nn.Param{{Name: "w0", T: w0}}, pred.Params()...)

	h1 := embedLike(x, w0)
	logits1 := pred.Forward(h1)
	loss1 := tensor.BCEWithLogitsT(logits1, tensor.Const(targets))
	pl, err := Compile(loss1, h1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	loss1.Backward()
	wantLoss := math.Float32bits(loss1.Value.Data[0])
	wantLogits := logits1.Value.Clone()
	wantH := h1.Grad.Clone()
	grads := snapshotGrads(t, params)
	tensor.FreeGraph(loss1)

	for _, pm := range params {
		pm.T.Grad = nil
	}
	h := embedLike(x, w0)
	out := pl.Apply(h, targets)
	if out == nil {
		t.Fatal("Apply returned nil on matching shape")
	}
	if got := math.Float32bits(out.Value.Data[0]); got != wantLoss {
		t.Fatalf("loss 0x%08x vs eager 0x%08x", got, wantLoss)
	}
	requireBits(t, "logits", wantLogits, pl.Logits())
	out.Backward()
	requireBits(t, "h.Grad", wantH, h.Grad)
	for _, gs := range grads {
		requireBits(t, gs.name, gs.want, gs.t.Grad)
	}
	tensor.FreeGraph(out)
}

func TestPlanShapeMissFallsBack(t *testing.T) {
	const d, b = 8, 4
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 3*b, d)
	w0 := tensor.Var(randMat(rng, d, d))
	pred := nn.NewMLP(rng, nn.ActReLU, 2*d, d, 1)
	targets := randTargets(rng, 2*b)

	h := embedLike(x, w0)
	loss, _ := linkHead(pred, h, b, targets)
	pl, err := Compile(loss, h)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Row-count miss.
	if out := pl.Apply(embedLike(randMat(rng, 3*(b+1), d), w0), targets); out != nil {
		t.Fatal("Apply accepted a boundary with the wrong row count")
	}
	// Target-shape miss.
	if out := pl.Apply(embedLike(x, w0), randTargets(rng, 2*b+2)); out != nil {
		t.Fatal("Apply accepted targets with the wrong shape")
	}
	// requiresGrad miss: a constant boundary against a grad-captured plan.
	if out := pl.Apply(tensor.Const(randMat(rng, 3*b, d)), targets); out != nil {
		t.Fatal("Apply accepted a const boundary for a grad-bearing plan")
	}
}

func TestPlanUnsupportedOpErrors(t *testing.T) {
	const d, b = 8, 2
	rng := rand.New(rand.NewSource(9))
	x := randMat(rng, 3*b, d)
	w0 := tensor.Var(randMat(rng, d, d))
	pred := nn.NewMLP(rng, nn.ActReLU, 2*d, d, 1)
	targets := randTargets(rng, 2*b)

	h := embedLike(x, w0)
	loss, _ := linkHead(pred, h, b, targets)
	// Loss root must be bcelogits.
	if _, err := Compile(tensor.ScaleT(loss, 2), h); err == nil {
		t.Fatal("Compile accepted a non-bcelogits root")
	}
	// Unsupported op inside the head.
	scaled := tensor.ScaleT(embedLike(x, w0), 2)
	loss2, _ := linkHead(pred, scaled, b, targets)
	if _, err := Compile(loss2, embedLike(x, w0)); err == nil {
		t.Fatal("Compile accepted an unsupported op in the head")
	}
	// Stray const leaf inside the head.
	h3 := embedLike(x, w0)
	mixed := tensor.ConcatColsT(tensor.GatherRowsT(h3, []int{0, 1}), tensor.Const(randMat(rng, 2, d)))
	loss3 := tensor.BCEWithLogitsT(pred.Forward(mixed), tensor.Const(randTargets(rng, 2)))
	if _, err := Compile(loss3, h3); err == nil {
		t.Fatal("Compile accepted a stray const leaf")
	}
}

// TestPlanZeroAllocSteadyState pins the tentpole allocation claim: once
// compiled and warmed, a full Apply → Backward → FreeGraph cycle performs
// zero heap allocations (static slabs, rearm-able node, pooled free stack).
// The boundary is a constant here so the plan owns the entire tape — the
// trainer-side embedding tape has its own (eager) allocation budget.
func TestPlanZeroAllocSteadyState(t *testing.T) {
	const d, b = 8, 4
	rng := rand.New(rand.NewSource(11))
	hM := randMat(rng, 3*b, d)
	h := tensor.Const(hM)
	pred := nn.NewMLP(rng, nn.ActReLU, 2*d, d, 1)
	targets := randTargets(rng, 2*b)

	loss, _ := linkHead(pred, h, b, targets)
	pl, err := Compile(loss, h)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tensor.FreeGraph(loss)

	run := func() {
		out := pl.Apply(h, targets)
		if out == nil {
			t.Fatal("Apply returned nil on matching shape")
		}
		out.Backward()
		tensor.FreeGraph(out)
	}
	run() // warm: parameter grads and the free-stack pool come alive here
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("steady-state compiled step allocated %.1f times per run, want 0", allocs)
	}
}
