package core

import (
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/obs"
)

// Options configures a Cascade scheduler.
type Options struct {
	// Name labels the scheduler in experiment output; defaults to
	// "Cascade". The ablation and Lite variants use "Cascade-TB" /
	// "Cascade-Lite".
	Name string
	// BaseBatch is the pre-defined small batch size B0 the ABS profiles
	// against (the paper uses 900); also the lower-bound granularity the
	// framework is calibrated to.
	BaseBatch int
	// ThetaSim is the SG-Filter similarity threshold (default 0.9).
	ThetaSim float64
	// DisableSGFilter turns temporal-independence filtering off — the
	// paper's Cascade-TB ablation (§5.3).
	DisableSGFilter bool
	// ChunkSize > 0 enables the chunk-based preprocessing of §4.2
	// (Cascade_EX); 0 builds one full-sequence table.
	ChunkSize int
	// Pipeline overlaps chunk-table building with training (only
	// meaningful with ChunkSize > 0).
	Pipeline bool
	// Workers bounds CPU parallelism in table building and lookups
	// (paper: 32 threads); ≤ 0 uses all cores.
	Workers int
	// ProfileSamples is how many base batches the ABS inspects (paper: 50).
	ProfileSamples int
	// Seed drives profiling batch sampling.
	Seed int64
	// Obs, when non-nil, receives scheduler metrics: Maxr evolution
	// (`cascade_maxr`), SG-Filter stable counts/ratio, the batch-size
	// histogram, and counters for which bound cut each batch
	// (`cascade_cut_{dependency,floor,chunk,end,safety}_total`).
	Obs *obs.Registry
}

func (o *Options) fillDefaults() {
	if o.Name == "" {
		o.Name = "Cascade"
	}
	if o.BaseBatch <= 0 {
		o.BaseBatch = 900
	}
	if o.ThetaSim == 0 {
		o.ThetaSim = 0.9
	}
	if o.ProfileSamples <= 0 {
		o.ProfileSamples = 50
	}
}

// Scheduler is Cascade's batching.Scheduler (Algorithm 1): preprocessing
// builds the dependency table and profiles Max Endurance; each Next() call
// asks the SG-Filter for stable nodes, has the TG-Diffuser reduce the last
// tolerable event over non-stable nodes, and cuts the batch there; each
// OnBatchEnd feeds memory updates to the SG-Filter and training loss to the
// ABS, which may decay Maxr.
type Scheduler struct {
	opt      Options
	events   []graph.Event
	numNodes int

	diffuser *TGDiffuser
	filter   *SGFilter
	abs      *ABS

	chunked  *ChunkedTable // nil when unchunked
	curChunk int
	full     *DependencyTable // nil when chunked

	cursor     int
	maxrPinned bool

	// Timing instrumentation for the Fig. 13(b)/14(c) latency breakdowns.
	buildTime  time.Duration
	lookupTime time.Duration

	batchSizes  []int
	maxrTrace   []int
	stableTrace []int
}

var (
	_ batching.Scheduler     = (*Scheduler)(nil)
	_ batching.SpanScheduler = (*Scheduler)(nil)
)

// NewScheduler preprocesses the event sequence (dependency table + ABS
// profiling, Algorithm 1 lines 5–7) and returns a ready scheduler.
func NewScheduler(events []graph.Event, numNodes int, opt Options) *Scheduler {
	opt.fillDefaults()
	s := &Scheduler{opt: opt, events: events, numNodes: numNodes}
	start := time.Now()
	var profileTable *DependencyTable
	if opt.ChunkSize > 0 {
		s.chunked = NewChunkedTable(events, numNodes, opt.Workers, opt.ChunkSize, opt.Pipeline)
		profileTable = s.chunked.Get(0)
		s.diffuser = NewTGDiffuser(profileTable, 1, opt.Workers)
	} else {
		s.full = BuildDependencyTable(events, numNodes, opt.Workers)
		profileTable = s.full
		s.diffuser = NewTGDiffuser(s.full, 1, opt.Workers)
	}
	stats := ProfileMaxEndurance(profileTable, events, opt.BaseBatch, opt.ProfileSamples, opt.Seed)
	s.abs = NewABS(stats)
	s.diffuser.SetMaxr(s.abs.Maxr())
	s.filter = NewSGFilter(numNodes, opt.ThetaSim)
	s.buildTime = time.Since(start)
	if r := opt.Obs; r != nil {
		r.Gauge("cascade_build_seconds").Set(s.buildTime.Seconds())
		r.Gauge("cascade_maxr").Set(float64(s.abs.Maxr()))
		r.Help("cascade_maxr", "Maximum Revisit Endurance currently in force (ABS-decayed).")
		r.Help("cascade_dep_violation_events_total", "Events included past the TG-Diffuser dependency boundary by floor/chunk/safety cuts.")
		r.Help("cascade_revisit_depth", "Relevant events the most-revisited node absorbed in the last batch (staleness proxy).")
		r.Help("cascade_filter_stable_updates_total", "Memory updates the SG-Filter flagged stable (kept for dependency skipping).")
		r.Help("cascade_filter_unstable_updates_total", "Memory updates below the SG-Filter similarity threshold (dropped).")
	}
	return s
}

// Name implements batching.Scheduler.
func (s *Scheduler) Name() string { return s.opt.Name }

// Reset implements batching.Scheduler: restart the walk, clear stable flags
// (Algorithm 1 line 10), keep the decayed Maxr.
func (s *Scheduler) Reset() {
	s.cursor = 0
	s.filter.Reset()
	s.abs.ResetEpoch()
	if s.chunked != nil {
		s.curChunk = 0
		s.diffuser.SetTable(s.chunked.Get(0))
	} else {
		s.diffuser.SetTable(s.full)
	}
	s.batchSizes = s.batchSizes[:0]
	s.maxrTrace = s.maxrTrace[:0]
	s.stableTrace = s.stableTrace[:0]
}

// nextInfo captures one boundary decision for span attrs and metrics.
type nextInfo struct {
	cut        string // which bound cut the batch: dependency/floor/chunk/end/safety
	violations int    // events included past the dependency boundary
	revisit    int    // max relevant events any node absorbed this batch
	maxr       int
	stable     int
}

// Next implements batching.Scheduler: Algorithm 1 lines 11–14.
func (s *Scheduler) Next() (batching.Batch, bool) {
	b, _, ok := s.next()
	return b, ok
}

// NextSpanned implements batching.SpanScheduler: the boundary decision is
// recorded as a tg_diffuser child span carrying the scheduler-introspection
// attrs (cut kind, Maxr, stable count, dependency violations, revisit
// depth). parent == nil degrades to plain Next.
func (s *Scheduler) NextSpanned(parent *obs.Span) (batching.Batch, bool) {
	sp := parent.Child("tg_diffuser", obs.PhaseDiffuser)
	b, info, ok := s.next()
	if ok {
		sp.SetStr("cut", info.cut)
		sp.SetInt("batch_size", int64(b.Size()))
		sp.SetInt("maxr", int64(info.maxr))
		sp.SetInt("stable_nodes", int64(info.stable))
		sp.SetInt("dep_violation_events", int64(info.violations))
		sp.SetInt("revisit_depth", int64(info.revisit))
	}
	sp.End()
	return b, ok
}

func (s *Scheduler) next() (batching.Batch, nextInfo, bool) {
	n := len(s.events)
	if s.cursor >= n {
		return batching.Batch{}, nextInfo{}, false
	}
	start := time.Now()
	// Chunk switch: the final event of a chunk bounds all dependencies.
	chunkHi := n
	if s.chunked != nil {
		_, hi := s.chunked.ChunkBounds(s.curChunk)
		for s.cursor >= hi { // crossed into the next chunk
			s.curChunk++
			_, hi = s.chunked.ChunkBounds(s.curChunk)
			s.diffuser.SetTable(s.chunked.Get(s.curChunk))
		}
		chunkHi = hi
	}

	var stable func(int32) bool
	if !s.opt.DisableSGFilter {
		stable = s.filter.StableFunc()
	}
	k := s.diffuser.LastTolerableEvent(stable)

	// cut names which bound decided the batch boundary (observability:
	// `cascade_cut_*_total` counters distinguish dependency-limited batches
	// from floor-, chunk- and sequence-end-limited ones).
	cut := "chunk"
	if chunkHi == n {
		cut = "end"
	}
	ed := chunkHi
	if k != MaxEventIndex && k+1 < ed {
		ed = k + 1
		cut = "dependency"
	}
	// Batch floor: Cascade grows batches from the pre-defined small size —
	// the ABS calibrated that size as "small enough to ensure the training
	// proceeds without deteriorating the model's performance" (§4.1), so a
	// dependency boundary tighter than one base batch is never taken.
	if floor := s.cursor + s.opt.BaseBatch; ed < floor {
		ed = floor
		cut = "floor"
		if ed > chunkHi {
			ed = chunkHi
			cut = "chunk"
		}
		if ed > n {
			ed = n
			cut = "end"
		}
	}
	if ed <= s.cursor { // safety: always make progress
		ed = s.cursor + 1
		cut = "safety"
	}
	// Dependency violations: events this batch includes past the diffuser's
	// tolerable boundary (only a non-"dependency" cut can overshoot it).
	violations := 0
	if k != MaxEventIndex && ed > k+1 {
		violations = ed - (k + 1)
	}
	revisit := s.diffuser.AdvancePointers(ed)
	st := s.cursor
	s.cursor = ed
	s.lookupTime += time.Since(start)
	s.batchSizes = append(s.batchSizes, ed-st)
	s.maxrTrace = append(s.maxrTrace, s.diffuser.Maxr())
	stableCount := s.filter.StableCount()
	s.stableTrace = append(s.stableTrace, stableCount)
	if r := s.opt.Obs; r != nil {
		r.Counter("cascade_batches_total").Inc()
		r.Counter("cascade_cut_" + cut + "_total").Inc()
		r.Histogram("cascade_batch_size", obs.SizeEdges...).Observe(float64(ed - st))
		r.Gauge("cascade_maxr").Set(float64(s.diffuser.Maxr()))
		r.Gauge("cascade_stable_nodes").Set(float64(stableCount))
		r.Counter("cascade_dep_violation_events_total").Add(int64(violations))
		if violations > 0 {
			r.Counter("cascade_dep_violation_batches_total").Inc()
		}
		r.Gauge("cascade_revisit_depth").Set(float64(revisit))
	}
	info := nextInfo{
		cut:        cut,
		violations: violations,
		revisit:    revisit,
		maxr:       s.diffuser.Maxr(),
		stable:     stableCount,
	}
	return batching.Batch{St: st, Ed: ed}, info, true
}

// OnBatchEnd implements batching.Scheduler: Algorithm 1 lines 19–20 plus
// the ABS decay loop of §4.4.
func (s *Scheduler) OnBatchEnd(fb batching.Feedback) {
	s.OnBatchEndSpanned(fb, nil)
}

// OnBatchEndSpanned implements batching.SpanScheduler: the SG-Filter update
// and the ABS decay decision each become a child span of parent, carrying
// the keep/drop counts and the loss/Maxr state they acted on. parent == nil
// records nothing (OnBatchEnd delegates here).
func (s *Scheduler) OnBatchEndSpanned(fb batching.Feedback, parent *obs.Span) {
	start := time.Now()
	if !s.opt.DisableSGFilter && len(fb.Nodes) > 0 && fb.PreMem != nil && fb.PostMem != nil {
		fsp := parent.Child("sg_filter", obs.PhaseFilter)
		preStable, preTotal := s.filter.StableUpdates(), s.filter.Updates()
		s.filter.Update(fb.Nodes, fb.PreMem, fb.PostMem)
		kept := s.filter.StableUpdates() - preStable
		dropped := s.filter.Updates() - preTotal - kept
		if r := s.opt.Obs; r != nil {
			r.Counter("cascade_filter_stable_updates_total").Add(kept)
			r.Counter("cascade_filter_unstable_updates_total").Add(dropped)
		}
		fsp.SetInt("kept_stable", kept)
		fsp.SetInt("dropped_unstable", dropped)
		fsp.SetInt("stable_nodes", int64(s.filter.StableCount()))
		fsp.End()
	}
	asp := parent.Child("abs_decision", obs.PhaseABS)
	asp.SetFloat("loss", fb.Loss)
	if maxr, changed := s.abs.ObserveLoss(fb.Loss); changed && !s.maxrPinned {
		s.diffuser.SetMaxr(maxr)
		asp.SetInt("decayed_to", int64(maxr))
		if r := s.opt.Obs; r != nil {
			r.Counter("cascade_maxr_decays_total").Inc()
			r.Gauge("cascade_maxr").Set(float64(maxr))
		}
	}
	asp.SetInt("maxr", int64(s.diffuser.Maxr()))
	asp.End()
	if r := s.opt.Obs; r != nil {
		r.Gauge("cascade_stable_ratio").Set(s.filter.StableUpdateRatio())
	}
	s.lookupTime += time.Since(start)
}

// Filter exposes the SG-Filter (stable-ratio accounting, Fig. 5).
func (s *Scheduler) Filter() *SGFilter { return s.filter }

// Sensor exposes the ABS (Maxr traces).
func (s *Scheduler) Sensor() *ABS { return s.abs }

// BatchSizes returns the sizes produced since the last Reset (Fig. 12a).
func (s *Scheduler) BatchSizes() []int { return s.batchSizes }

// MaxrTrace returns the endurance in force at each batch since the last
// Reset (visualizes the ABS's decay schedule).
func (s *Scheduler) MaxrTrace() []int { return s.maxrTrace }

// StableCountTrace returns the number of stable-flagged nodes at each batch
// since the last Reset (visualizes the SG-Filter warming up within an
// epoch).
func (s *Scheduler) StableCountTrace() []int { return s.stableTrace }

// BuildTime returns the preprocessing latency (dependency table + ABS
// profiling) — the "Build Table" bar of Fig. 13(b)/14(c).
func (s *Scheduler) BuildTime() time.Duration { return s.buildTime }

// LookupTime returns cumulative batching latency (last-event lookups,
// pointer updates, flag maintenance) — the "Event_Lookup&Updating" bar.
func (s *Scheduler) LookupTime() time.Duration { return s.lookupTime }

// TableMemoryBytes reports the dependency table's resident size (Fig. 13c
// "DT").
func (s *Scheduler) TableMemoryBytes() int64 {
	if s.chunked != nil {
		return s.chunked.MemoryBytes()
	}
	return s.full.MemoryBytes()
}

// FlagMemoryBytes reports the stable-flag array's size (Fig. 13c "SF").
func (s *Scheduler) FlagMemoryBytes() int64 { return s.filter.MemoryBytes() }

// RelevantCount reports how many events in [st, ed) are relevant to node n
// per the dependency table — the per-node dependency weight the
// bounded-staleness pipeline attaches to forced applies (a high count means
// deferring the node would have starved many in-batch reads). Returns 0
// when the scheduler runs chunked (Cascade_EX keeps no full table).
func (s *Scheduler) RelevantCount(n int32, st, ed int) int {
	if s.full == nil {
		return 0
	}
	return s.full.CountInRange(n, st, ed)
}

// SensorMaxr reports the current Maxr (duck-typed by the trainer's epoch
// statistics).
func (s *Scheduler) SensorMaxr() int { return s.abs.Maxr() }

// StableUpdateRatio proxies the SG-Filter's epoch counter (Fig. 5).
func (s *Scheduler) StableUpdateRatio() float64 { return s.filter.StableUpdateRatio() }

// PinMaxr fixes the endurance at m and bypasses ABS decay from then on —
// the fixed-Maxr ablation harness uses this to sweep the §4.4 design point.
func (s *Scheduler) PinMaxr(m int) {
	s.maxrPinned = true
	s.diffuser.SetMaxr(m)
}
