package core

import (
	"testing"

	"github.com/cascade-ml/cascade/internal/tensor"
)

func TestSGFilterFlagsBySimilarity(t *testing.T) {
	f := NewSGFilter(4, 0.9)
	pre := tensor.FromSlice(3, 2, []float32{
		1, 0, // node 0: unchanged → sim 1
		1, 0, // node 1: rotated → sim 0
		2, 2, // node 2: scaled → sim 1
	})
	post := tensor.FromSlice(3, 2, []float32{
		1, 0,
		0, 1,
		4, 4,
	})
	f.Update([]int32{0, 1, 2}, pre, post)
	if !f.IsStable(0) || f.IsStable(1) || !f.IsStable(2) {
		t.Fatalf("flags: %v %v %v", f.IsStable(0), f.IsStable(1), f.IsStable(2))
	}
	if f.StableCount() != 2 {
		t.Fatalf("stable count %d", f.StableCount())
	}
	if r := f.StableUpdateRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("stable ratio %v, want 2/3", r)
	}
}

func TestSGFilterFlagFollowsLatestUpdate(t *testing.T) {
	f := NewSGFilter(2, 0.9)
	same := tensor.FromSlice(1, 2, []float32{1, 0})
	f.Update([]int32{0}, same, same.Clone())
	if !f.IsStable(0) {
		t.Fatal("identical update not stable")
	}
	// Node moves again → flag drops.
	moved := tensor.FromSlice(1, 2, []float32{0, 1})
	f.Update([]int32{0}, same, moved)
	if f.IsStable(0) {
		t.Fatal("destabilized node kept its flag")
	}
}

func TestSGFilterReset(t *testing.T) {
	f := NewSGFilter(2, 0.9)
	same := tensor.FromSlice(1, 2, []float32{1, 1})
	f.Update([]int32{1}, same, same.Clone())
	f.Reset()
	if f.IsStable(1) || f.StableUpdateRatio() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSGFilterThresholdSensitivity(t *testing.T) {
	// A pair with similarity ≈ 0.894 (cos of [1,0] vs [2,1]) is stable at
	// θ=0.85 but not at θ=0.95 — the Fig. 13(a) sensitivity.
	pre := tensor.FromSlice(1, 2, []float32{1, 0})
	post := tensor.FromSlice(1, 2, []float32{2, 1})
	loose := NewSGFilter(1, 0.85)
	loose.Update([]int32{0}, pre, post)
	strict := NewSGFilter(1, 0.95)
	strict.Update([]int32{0}, pre, post)
	if !loose.IsStable(0) {
		t.Fatal("θ=0.85 should accept sim≈0.894")
	}
	if strict.IsStable(0) {
		t.Fatal("θ=0.95 should reject sim≈0.894")
	}
}

func TestSGFilterZeroMemoriesAreStable(t *testing.T) {
	// An untouched zero memory has not changed: stable by convention.
	f := NewSGFilter(1, 0.9)
	z := tensor.NewMatrix(1, 3)
	f.Update([]int32{0}, z, z.Clone())
	if !f.IsStable(0) {
		t.Fatal("zero→zero update not stable")
	}
}

func TestSGFilterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for theta out of range")
		}
	}()
	NewSGFilter(1, 2.0)
}

func TestSGFilterEmptyUpdateNoop(t *testing.T) {
	f := NewSGFilter(1, 0.9)
	f.Update(nil, nil, nil) // must not panic
	if f.StableUpdateRatio() != 0 {
		t.Fatal("ratio after empty update")
	}
}
