package core

import (
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/tensor"
)

func schedDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	return datagen.Wiki.Generate(datagen.Options{Scale: 0.004, Seed: 51, FeatDimOverride: 1, MinEvents: 4000})
}

func drain(s batching.Scheduler) []batching.Batch {
	var out []batching.Batch
	for {
		b, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, b)
		s.OnBatchEnd(batching.Feedback{Loss: 1})
	}
}

func assertRangePartition(t *testing.T, batches []batching.Batch, n int) {
	t.Helper()
	cursor := 0
	for i, b := range batches {
		if b.St != cursor {
			t.Fatalf("batch %d starts at %d, want %d", i, b.St, cursor)
		}
		if b.Ed <= b.St {
			t.Fatalf("batch %d empty [%d,%d)", i, b.St, b.Ed)
		}
		cursor = b.Ed
	}
	if cursor != n {
		t.Fatalf("schedule covered %d of %d events", cursor, n)
	}
}

func TestSchedulerPartitionsSequence(t *testing.T) {
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1})
	batches := drain(s)
	assertRangePartition(t, batches, d.NumEvents())
	if len(s.BatchSizes()) != len(batches) {
		t.Fatal("batch size trace length mismatch")
	}
}

func TestSchedulerResetReproducesWithoutFeedback(t *testing.T) {
	// With no runtime feedback (no ABS decay, no stability flags), two
	// epochs must produce identical batch boundaries.
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1})
	noFeedback := func() []batching.Batch {
		var out []batching.Batch
		for {
			b, ok := s.Next()
			if !ok {
				return out
			}
			out = append(out, b)
		}
	}
	b1 := noFeedback()
	s.Reset()
	b2 := noFeedback()
	if len(b1) != len(b2) {
		t.Fatalf("epochs differ: %d vs %d batches", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i].St != b2[i].St || b1[i].Ed != b2[i].Ed {
			t.Fatalf("batch %d differs after reset", i)
		}
	}
}

func TestSchedulerEnduranceRespected(t *testing.T) {
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1, DisableSGFilter: true})
	table := BuildDependencyTable(d.Events, d.NumNodes, 2)
	maxr := s.Sensor().Maxr()
	for _, b := range drain(s) {
		if b.Ed-b.St <= 100 {
			// Floor batches (≤ base size) are exempt: the base batch is
			// calibrated as safe regardless of endurance (§4.1).
			continue
		}
		for n := int32(0); int(n) < d.NumNodes; n++ {
			if c := table.CountInRange(n, b.St, b.Ed); c > maxr+1 {
				t.Fatalf("node %d involved %d times in [%d,%d), Maxr %d", n, c, b.St, b.Ed, maxr)
			}
		}
	}
}

func TestSchedulerStableFlagsGrowBatches(t *testing.T) {
	d := schedDataset(t)
	base := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1, DisableSGFilter: true})
	baseBatches := drain(base)

	withFilter := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1})
	// Report every touched node as perfectly stable: pre == post.
	var filtered []batching.Batch
	for {
		b, ok := withFilter.Next()
		if !ok {
			break
		}
		filtered = append(filtered, b)
		nodes := touchedNodes(d.Events[b.St:b.Ed])
		mem := tensor.NewMatrix(len(nodes), 2)
		for i := range mem.Data {
			mem.Data[i] = 1
		}
		withFilter.OnBatchEnd(batching.Feedback{Loss: 1, Nodes: nodes, PreMem: mem, PostMem: mem.Clone()})
	}
	assertRangePartition(t, filtered, d.NumEvents())
	if batching.MeanBatchSize(filtered) <= batching.MeanBatchSize(baseBatches) {
		t.Fatalf("all-stable filtering did not grow batches: %.1f vs %.1f",
			batching.MeanBatchSize(filtered), batching.MeanBatchSize(baseBatches))
	}
}

func touchedNodes(events []graph.Event) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, e := range events {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

func TestSchedulerChunkedRespectsBoundaries(t *testing.T) {
	d := schedDataset(t)
	const chunk = 500
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1, ChunkSize: chunk})
	batches := drain(s)
	assertRangePartition(t, batches, d.NumEvents())
	for i, b := range batches {
		if b.St/chunk != (b.Ed-1)/chunk {
			t.Fatalf("batch %d [%d,%d) crosses a chunk boundary", i, b.St, b.Ed)
		}
	}
}

func TestSchedulerChunkedPipelinedSameBatches(t *testing.T) {
	d := schedDataset(t)
	a := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1, ChunkSize: 700})
	b := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1, ChunkSize: 700, Pipeline: true})
	ba, bb := drain(a), drain(b)
	if len(ba) != len(bb) {
		t.Fatalf("pipelining changed batch count: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i].St != bb[i].St || ba[i].Ed != bb[i].Ed {
			t.Fatalf("pipelining changed batch %d", i)
		}
	}
}

func TestSchedulerGrowsBatchesBeyondBase(t *testing.T) {
	// The headline behaviour (Fig. 12a): on a sparse-ish stream Cascade's
	// mean batch size exceeds the base size.
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 50, Workers: 2, Seed: 1, DisableSGFilter: true})
	batches := drain(s)
	if m := batching.MeanBatchSize(batches); m <= 50 {
		t.Fatalf("mean batch %.1f not above base 50", m)
	}
}

func TestSchedulerTimersAndMemory(t *testing.T) {
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1})
	drain(s)
	if s.BuildTime() <= 0 {
		t.Fatal("no build time recorded")
	}
	if s.LookupTime() <= 0 {
		t.Fatal("no lookup time recorded")
	}
	if s.TableMemoryBytes() <= 0 || s.FlagMemoryBytes() <= 0 {
		t.Fatal("memory accounting")
	}
	if s.Name() != "Cascade" {
		t.Fatalf("default name %q", s.Name())
	}
}

func TestSchedulerImplementsInterface(t *testing.T) {
	var _ batching.Scheduler = (*Scheduler)(nil)
}

func TestSchedulerABSDecayNeverRaisesMaxr(t *testing.T) {
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 50, Workers: 2, Seed: 1})
	start := s.Sensor().Maxr()
	// Several epochs of flat loss force decay.
	for epoch := 0; epoch < 5; epoch++ {
		s.Reset()
		for {
			_, ok := s.Next()
			if !ok {
				break
			}
			s.OnBatchEnd(batching.Feedback{Loss: 2.0})
		}
	}
	if s.Sensor().Maxr() > start {
		t.Fatalf("Maxr %d increased from %d under flat loss", s.Sensor().Maxr(), start)
	}
}

func TestSchedulerTraces(t *testing.T) {
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1})
	batches := drain(s)
	if len(s.MaxrTrace()) != len(batches) || len(s.StableCountTrace()) != len(batches) {
		t.Fatalf("trace lengths %d/%d for %d batches",
			len(s.MaxrTrace()), len(s.StableCountTrace()), len(batches))
	}
	for _, m := range s.MaxrTrace() {
		if m < 1 {
			t.Fatalf("Maxr trace contains %d", m)
		}
	}
	s.Reset()
	if len(s.MaxrTrace()) != 0 || len(s.StableCountTrace()) != 0 {
		t.Fatal("traces survived Reset")
	}
}

func TestSchedulerChunkedWithStableFeedback(t *testing.T) {
	// Chunking and the SG-Filter must compose: all-stable feedback grows
	// batches up to (but never across) chunk boundaries.
	d := schedDataset(t)
	const chunk = 600
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 50, Workers: 2, Seed: 1, ChunkSize: chunk})
	var batches []batching.Batch
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
		if b.St/chunk != (b.Ed-1)/chunk {
			t.Fatalf("batch [%d,%d) crosses chunk boundary", b.St, b.Ed)
		}
		nodes := touchedNodes(d.Events[b.St:b.Ed])
		mem := tensor.NewMatrix(len(nodes), 2)
		for i := range mem.Data {
			mem.Data[i] = 1
		}
		s.OnBatchEnd(batching.Feedback{Loss: 1, Nodes: nodes, PreMem: mem, PostMem: mem.Clone()})
	}
	assertRangePartition(t, batches, d.NumEvents())
	if batching.MeanBatchSize(batches) <= 50 {
		t.Fatal("stable feedback did not grow chunked batches")
	}
}

func TestPinMaxrBypassesABS(t *testing.T) {
	d := schedDataset(t)
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 50, Workers: 2, Seed: 1})
	s.PinMaxr(7)
	if s.diffuser.Maxr() != 7 {
		t.Fatalf("pinned Maxr %d", s.diffuser.Maxr())
	}
	// Flat loss for many batches: the diffuser's Maxr must stay pinned.
	for epoch := 0; epoch < 3; epoch++ {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			s.OnBatchEnd(batching.Feedback{Loss: 5})
		}
	}
	if s.diffuser.Maxr() != 7 {
		t.Fatalf("ABS overrode pinned Maxr: %d", s.diffuser.Maxr())
	}
}

func TestSchedulerObsMetrics(t *testing.T) {
	d := schedDataset(t)
	r := obs.NewRegistry()
	s := NewScheduler(d.Events, d.NumNodes, Options{BaseBatch: 100, Workers: 2, Seed: 1, Obs: r})
	batches := drain(s)
	if got := r.Counter("cascade_batches_total").Value(); got != int64(len(batches)) {
		t.Fatalf("cascade_batches_total = %d, want %d", got, len(batches))
	}
	if got := r.Histogram("cascade_batch_size").Count(); got != int64(len(batches)) {
		t.Fatalf("batch size histogram count = %d, want %d", got, len(batches))
	}
	// Every batch is attributed to exactly one cut reason.
	var cuts int64
	for _, c := range []string{"dependency", "floor", "chunk", "end", "safety"} {
		cuts += r.Counter("cascade_cut_" + c + "_total").Value()
	}
	if cuts != int64(len(batches)) {
		t.Fatalf("cut counters sum to %d, want %d", cuts, len(batches))
	}
	if got := r.Gauge("cascade_maxr").Value(); got != float64(s.SensorMaxr()) {
		t.Fatalf("cascade_maxr gauge = %v, want %v", got, s.SensorMaxr())
	}
	if r.Gauge("cascade_build_seconds").Value() < 0 {
		t.Fatal("negative build time")
	}
}
