package core

import (
	"fmt"
	"sort"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/parallel"
)

// Streaming extension: the paper's introduction motivates continuous
// retraining — "training schemes that can swiftly adapt TGNNs to the
// ever-changing landscapes of dynamic graphs". The static dependency table
// of Algorithm 2 assumes the whole event sequence is known up front; this
// file adds incremental appends so a deployed trainer can extend the table
// as new events arrive instead of rebuilding from scratch.

// StreamingTable wraps a DependencyTable with incremental appends that are
// exactly equivalent to rebuilding over the extended sequence (verified by
// property test).
type StreamingTable struct {
	events   []graph.Event
	numNodes int
	workers  int
	table    *DependencyTable
	// incident[n] mirrors the per-node ascending incident-event lists the
	// builder uses, maintained incrementally.
	incident [][]int32
}

// NewStreamingTable builds the initial table over the existing prefix.
func NewStreamingTable(events []graph.Event, numNodes, workers int) *StreamingTable {
	st := &StreamingTable{
		events:   append([]graph.Event(nil), events...),
		numNodes: numNodes,
		workers:  workers,
		incident: make([][]int32, numNodes),
	}
	for i, e := range st.events {
		st.incident[e.Src] = append(st.incident[e.Src], int32(i))
		st.incident[e.Dst] = append(st.incident[e.Dst], int32(i))
	}
	st.table = BuildDependencyTable(st.events, numNodes, workers)
	return st
}

// Table exposes the current dependency table (valid until the next Append).
func (s *StreamingTable) Table() *DependencyTable { return s.table }

// Events exposes the current event sequence.
func (s *StreamingTable) Events() []graph.Event { return s.events }

// Append extends the stream with new chronological events and updates the
// table incrementally. A new event e = (u, v) at index i affects:
//
//  1. u's and v's entries (their own incident event);
//  2. the entry of every node n that, before i, shared an event with u or
//     v — e is a "neighbor future event" for n (Algorithm 2 step 2).
//
// Returns an error if the new events violate dataset invariants relative to
// the existing suffix.
func (s *StreamingTable) Append(newEvents []graph.Event) error {
	if len(newEvents) == 0 {
		return nil
	}
	lastT := 0.0
	if len(s.events) > 0 {
		lastT = s.events[len(s.events)-1].Time
	}
	for _, e := range newEvents {
		if e.Time < lastT {
			return fmt.Errorf("core: streaming append out of order (t=%v after t=%v)", e.Time, lastT)
		}
		lastT = e.Time
		if e.Src < 0 || int(e.Src) >= s.numNodes || e.Dst < 0 || int(e.Dst) >= s.numNodes {
			return fmt.Errorf("core: streaming append node out of range (%d→%d)", e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("core: streaming append self loop on %d", e.Src)
		}
	}

	// affected[n] accumulates the event indices to merge into n's entry.
	affected := make(map[int32][]int32)
	base := len(s.events)
	for k, e := range newEvents {
		idx := int32(base + k)
		// Direct incidence.
		affected[e.Src] = append(affected[e.Src], idx)
		affected[e.Dst] = append(affected[e.Dst], idx)
		// Neighbor-future closure: nodes connected to u or v before idx.
		// A node n qualifies if it shares some incident event with u (or
		// v) that precedes idx — i.e. n appears as counterpart in u's
		// incident list. (The connecting event, being earlier, is already
		// in both lists.)
		for _, endpoint := range []int32{e.Src, e.Dst} {
			for _, prior := range s.incident[endpoint] {
				pe := s.events[prior]
				n := pe.Dst
				if n == endpoint {
					n = pe.Src
				}
				if n != e.Src && n != e.Dst {
					affected[n] = append(affected[n], idx)
				}
			}
		}
		// Update incidence as we go so later appended events see earlier
		// appended ones as "prior".
		s.events = append(s.events, e)
		s.incident[e.Src] = append(s.incident[e.Src], idx)
		s.incident[e.Dst] = append(s.incident[e.Dst], idx)
	}

	// Merge per node, in parallel.
	nodes := make([]int32, 0, len(affected))
	for n := range affected {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	parallel.For(len(nodes), s.workers, func(i int) {
		n := nodes[i]
		add := affected[n]
		sort.Slice(add, func(a, b int) bool { return add[a] < add[b] })
		entry := s.table.Entries[n]
		merged := make([]int32, 0, len(entry)+len(add))
		a, b := 0, 0
		for a < len(entry) || b < len(add) {
			switch {
			case a == len(entry):
				merged = appendUnique(merged, add[b])
				b++
			case b == len(add):
				merged = appendUnique(merged, entry[a])
				a++
			case entry[a] < add[b]:
				merged = appendUnique(merged, entry[a])
				a++
			case entry[a] > add[b]:
				merged = appendUnique(merged, add[b])
				b++
			default:
				merged = appendUnique(merged, entry[a])
				a++
				b++
			}
		}
		s.table.Entries[n] = merged
	})
	s.table.Hi = len(s.events)
	return nil
}

func appendUnique(dst []int32, v int32) []int32 {
	if n := len(dst); n > 0 && dst[n-1] == v {
		return dst
	}
	return append(dst, v)
}
