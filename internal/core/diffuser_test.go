package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/graph"
)

func TestDiffuserPaperExampleFig7(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	d := NewTGDiffuser(table, 4, 1)
	// Figure 7(b): with Maxr = 4 and fresh pointers, node 1 and node 2 both
	// bound the batch at event 8 (node 7 would allow 9, node 8 would allow
	// 10); the reduction yields 8.
	if k := d.LastTolerableEvent(nil); k != 8 {
		t.Fatalf("last tolerable event = %d, want 8", k)
	}
}

func TestDiffuserPaperExampleFig8StableExpansion(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	d := NewTGDiffuser(table, 4, 1)
	// Figure 8(b): with nodes 1, 2 and 7 stabilized, the barrier at 8
	// disappears and the boundary expands to 10 (bounded by node 8).
	stable := map[int32]bool{1: true, 2: true, 7: true}
	k := d.LastTolerableEvent(func(n int32) bool { return stable[n] })
	if k != 10 {
		t.Fatalf("stable-expanded boundary = %d, want 10", k)
	}
}

func TestDiffuserPointerAdvance(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	d := NewTGDiffuser(table, 4, 1)
	k := d.LastTolerableEvent(nil) // 8
	d.AdvancePointers(k + 1)
	// Node 1 consumed {0,1,2,3,8}; remaining {9,10,11} all fit in Maxr=4 →
	// MAX_INT from node 1; the same for everyone else → whole rest fits.
	if k2 := d.LastTolerableEvent(nil); k2 != MaxEventIndex {
		t.Fatalf("second boundary = %d, want MaxEventIndex", k2)
	}
}

func TestDiffuserSmallMaxrTightensBatches(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	d := NewTGDiffuser(table, 1, 1)
	// Maxr=1: node 1's candidate is entry[1] = 1.
	if k := d.LastTolerableEvent(nil); k != 1 {
		t.Fatalf("Maxr=1 boundary = %d, want 1", k)
	}
	d.SetMaxr(0) // floors at 1
	if d.Maxr() != 1 {
		t.Fatalf("Maxr floor: %d", d.Maxr())
	}
}

func TestDiffuserSetTableResetsPointers(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	d := NewTGDiffuser(table, 4, 1)
	d.AdvancePointers(12)
	if k := d.LastTolerableEvent(nil); k != MaxEventIndex {
		t.Fatal("pointers not consumed")
	}
	d.SetTable(table)
	if k := d.LastTolerableEvent(nil); k != 8 {
		t.Fatalf("after SetTable boundary = %d, want 8", k)
	}
	if d.ActiveNodes() != 14 {
		t.Fatalf("active nodes = %d, want 14", d.ActiveNodes())
	}
}

// Property: walking a random stream to exhaustion with the diffuser yields
// batch boundaries that (a) always advance, (b) partition the sequence, and
// (c) never let a non-stable node participate in more than Maxr+1 relevant
// events per batch.
func TestDiffuserEnduranceInvariant(t *testing.T) {
	f := func(seed int64, nRaw uint16, maxrRaw uint8) bool {
		nEvents := int(nRaw)%300 + 30
		maxr := int(maxrRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		const nodes = 20
		events := make([]graph.Event, nEvents)
		for i := range events {
			s := int32(rng.Intn(nodes))
			dd := int32(rng.Intn(nodes))
			if dd == s {
				dd = (dd + 1) % nodes
			}
			events[i] = graph.Event{Src: s, Dst: dd, Time: float64(i)}
		}
		table := BuildDependencyTable(events, nodes, 2)
		d := NewTGDiffuser(table, maxr, 2)
		cursor := 0
		for cursor < nEvents {
			k := d.LastTolerableEvent(nil)
			ed := nEvents
			if k != MaxEventIndex && k+1 < ed {
				ed = k + 1
			}
			if ed <= cursor {
				return false // no progress
			}
			// Endurance check: relevant events within [cursor, ed) per node.
			for n := int32(0); n < nodes; n++ {
				if table.CountInRange(n, cursor, ed) > maxr+1 {
					return false
				}
			}
			d.AdvancePointers(ed)
			cursor = ed
		}
		return cursor == nEvents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: marking nodes stable can only relax the boundary.
func TestStableNodesOnlyRelaxBoundary(t *testing.T) {
	f := func(seed int64, stableMask uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 16
		events := make([]graph.Event, 120)
		for i := range events {
			s := int32(rng.Intn(nodes))
			dd := int32(rng.Intn(nodes))
			if dd == s {
				dd = (dd + 1) % nodes
			}
			events[i] = graph.Event{Src: s, Dst: dd, Time: float64(i)}
		}
		table := BuildDependencyTable(events, nodes, 1)
		d := NewTGDiffuser(table, 3, 1)
		base := d.LastTolerableEvent(nil)
		withStable := d.LastTolerableEvent(func(n int32) bool {
			return stableMask&(1<<uint(n)) != 0
		})
		return withStable >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
