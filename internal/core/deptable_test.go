package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
)

// paperExample reproduces the event sequence of Figures 7–9:
// index: 0=e12 1=e17 2=e18 3=e19 4=eab 5=eac 6=ead 7=eas 8=e13 9=e15 10=e16
// 11=e34, with letter nodes mapped a=10 b=11 c=12 d=13 s=14.
func paperExample() ([]graph.Event, int) {
	edges := [][2]int32{
		{1, 2}, {1, 7}, {1, 8}, {1, 9}, {10, 11}, {10, 12},
		{10, 13}, {10, 14}, {1, 3}, {1, 5}, {1, 6}, {3, 4},
	}
	events := make([]graph.Event, len(edges))
	for i, e := range edges {
		events[i] = graph.Event{Src: e[0], Dst: e[1], Time: float64(i), FeatIdx: -1}
	}
	return events, 15
}

func TestDependencyTableMatchesPaperExample(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	want := map[int32][]int32{
		1:  {0, 1, 2, 3, 8, 9, 10, 11},
		2:  {0, 1, 2, 3, 8, 9, 10},
		3:  {8, 9, 10, 11},
		4:  {11},
		5:  {9, 10},
		6:  {10},
		7:  {1, 2, 3, 8, 9, 10},
		8:  {2, 3, 8, 9, 10},
		9:  {3, 8, 9, 10},
		10: {4, 5, 6, 7},
		11: {4, 5, 6, 7},
		12: {5, 6, 7},
		13: {6, 7},
		14: {7},
	}
	for node, entry := range want {
		if got := table.Entry(node); !reflect.DeepEqual(got, entry) {
			t.Errorf("node %d entry = %v, want %v", node, got, entry)
		}
	}
	if e := table.Entry(0); len(e) != 0 {
		t.Errorf("isolated node has entry %v", e)
	}
}

func TestDependencyTableParallelMatchesSerial(t *testing.T) {
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 31, FeatDimOverride: 1, MinEvents: 2000})
	serial := BuildDependencyTable(d.Events, d.NumNodes, 1)
	par := BuildDependencyTable(d.Events, d.NumNodes, 8)
	for n := range serial.Entries {
		if !reflect.DeepEqual(serial.Entries[n], par.Entries[n]) {
			t.Fatalf("node %d: serial %v != parallel %v", n, serial.Entries[n], par.Entries[n])
		}
	}
}

// Invariants of Algorithm 2, property-checked on random streams:
//  1. entries are sorted and duplicate-free;
//  2. every incident event of n appears in n's entry;
//  3. every non-incident entry of n is a future event of some neighbor,
//     connected before that event;
//  4. no entry references an event outside the table's range.
func TestDependencyTableInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		nEvents := int(nRaw)%400 + 20
		rng := rand.New(rand.NewSource(seed))
		const nodes = 25
		events := make([]graph.Event, nEvents)
		for i := range events {
			s := int32(rng.Intn(nodes))
			d := int32(rng.Intn(nodes))
			if d == s {
				d = (d + 1) % nodes
			}
			events[i] = graph.Event{Src: s, Dst: d, Time: float64(i)}
		}
		table := BuildDependencyTable(events, nodes, 4)

		incident := make([][]int32, nodes)
		for i, e := range events {
			incident[e.Src] = append(incident[e.Src], int32(i))
			incident[e.Dst] = append(incident[e.Dst], int32(i))
		}
		for n := int32(0); n < nodes; n++ {
			entry := table.Entry(n)
			inEntry := make(map[int32]bool, len(entry))
			for i, v := range entry {
				if i > 0 && entry[i-1] >= v {
					return false // not sorted/unique
				}
				if int(v) >= nEvents || v < 0 {
					return false // out of range
				}
				inEntry[v] = true
			}
			for _, idx := range incident[n] {
				if !inEntry[idx] {
					return false // missing incident event
				}
			}
			// Closure check: non-incident entries must be justified.
			isIncident := make(map[int32]bool, len(incident[n]))
			for _, idx := range incident[n] {
				isIncident[idx] = true
			}
			for _, v := range entry {
				if isIncident[v] {
					continue
				}
				e := events[v]
				ok := false
				// Some incident event of n connecting to e.Src or e.Dst
				// must precede v.
				for _, idx := range incident[n] {
					if idx >= v {
						break
					}
					ie := events[idx]
					q := ie.Dst
					if ie.Dst == n {
						q = ie.Src
					}
					if q == e.Src || q == e.Dst {
						ok = true
						break
					}
				}
				if !ok {
					return false // unjustified dependency
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountInRange(t *testing.T) {
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	// Node 1 entry {0,1,2,3,8,9,10,11}: range [2, 10) covers {2,3,8,9}.
	if c := table.CountInRange(1, 2, 10); c != 4 {
		t.Fatalf("count = %d, want 4", c)
	}
	if c := table.CountInRange(0, 0, 12); c != 0 {
		t.Fatalf("isolated count = %d", c)
	}
	if c := table.CountInRange(14, 0, 12); c != 1 {
		t.Fatalf("node s count = %d", c)
	}
}

func TestChunkedTableBoundsDependencies(t *testing.T) {
	events, n := paperExample()
	ct := NewChunkedTable(events, n, 1, 6, false)
	if ct.NumChunks() != 2 {
		t.Fatalf("chunks = %d", ct.NumChunks())
	}
	t0 := ct.Get(0)
	// Within chunk 0 (events 0–5), node 1's entry stops at the boundary:
	// own {0,1,2,3}; no within-chunk neighbor futures beyond.
	if got := t0.Entry(1); !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Fatalf("chunk0 node1 entry %v", got)
	}
	t1 := ct.Get(1)
	// Chunk 1 (events 6–11): node 1's within-chunk events {8,9,10} plus
	// neighbor 3's future {11}.
	if got := t1.Entry(1); !reflect.DeepEqual(got, []int32{8, 9, 10, 11}) {
		t.Fatalf("chunk1 node1 entry %v", got)
	}
	lo, hi := ct.ChunkBounds(1)
	if lo != 6 || hi != 12 {
		t.Fatalf("bounds [%d,%d)", lo, hi)
	}
	if ct.ChunkOf(11) != 1 || ct.ChunkOf(0) != 0 {
		t.Fatal("ChunkOf")
	}
	if ct.MemoryBytes() <= 0 {
		t.Fatal("memory accounting")
	}
}

func TestChunkedPipelinePrefetches(t *testing.T) {
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 3, FeatDimOverride: 1, MinEvents: 1000})
	ct := NewChunkedTable(d.Events, d.NumNodes, 2, 300, true)
	// Sequential access must work and produce tables identical to
	// non-pipelined building.
	plain := NewChunkedTable(d.Events, d.NumNodes, 2, 300, false)
	for i := 0; i < ct.NumChunks(); i++ {
		a, b := ct.Get(i), plain.Get(i)
		for n := range a.Entries {
			if !reflect.DeepEqual(a.Entries[n], b.Entries[n]) {
				t.Fatalf("chunk %d node %d mismatch", i, n)
			}
		}
	}
}

func TestBuildTableRangeValidation(t *testing.T) {
	events, n := paperExample()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad range")
		}
	}()
	buildTableRange(events, n, 1, 5, 2)
}
