package core

import (
	"math"
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
)

// EnduranceStats are the Maximum-Endurance profiling results of §4.4
// (Fig. 9): the event sequence is cut into batches of the pre-defined small
// size, a sample of batches is inspected, and for each the highest per-node
// relevant-event count (Max Endurance) is recorded.
type EnduranceStats struct {
	MrMax, MrMean, MrMin float64
	// NumBaseBatches is B of Eq. 6 — how many batches the preset size
	// yields.
	NumBaseBatches int
	SampledBatches int
}

// ProfileMaxEndurance runs the ABS's preprocessing pass: it samples up to
// `samples` base-size batches (the paper samples 50) and computes per-batch
// Max Endurance as the maximum, over nodes incident to the batch, of the
// node's relevant-event count within the batch (counted against the
// dependency table, the same currency Maxr is spent in during training).
func ProfileMaxEndurance(table *DependencyTable, events []graph.Event, baseBatch, samples int, seed int64) EnduranceStats {
	if baseBatch <= 0 {
		panic("core: non-positive base batch for profiling")
	}
	n := len(events)
	numBatches := (n + baseBatch - 1) / baseBatch
	if numBatches == 0 {
		return EnduranceStats{MrMax: 1, MrMean: 1, MrMin: 1, NumBaseBatches: 0}
	}
	rng := rand.New(rand.NewSource(seed))
	picks := rng.Perm(numBatches)
	if samples > 0 && samples < len(picks) {
		picks = picks[:samples]
	}

	first := true
	var mrMax, mrMin, sum float64
	touched := make(map[int32]struct{})
	for _, b := range picks {
		st := b * baseBatch
		ed := st + baseBatch
		if ed > n {
			ed = n
		}
		clear(touched)
		for i := st; i < ed; i++ {
			touched[events[i].Src] = struct{}{}
			touched[events[i].Dst] = struct{}{}
		}
		batchMax := 0
		for node := range touched {
			if c := table.CountInRange(node, st, ed); c > batchMax {
				batchMax = c
			}
		}
		v := float64(batchMax)
		if first {
			mrMax, mrMin = v, v
			first = false
		} else {
			if v > mrMax {
				mrMax = v
			}
			if v < mrMin {
				mrMin = v
			}
		}
		sum += v
	}
	stats := EnduranceStats{
		MrMax:          math.Max(mrMax, 1),
		MrMean:         math.Max(sum/float64(len(picks)), 1),
		MrMin:          math.Max(mrMin, 1),
		NumBaseBatches: numBatches,
		SampledBatches: len(picks),
	}
	return stats
}

// ABS is the Adaptive Batch Sensor (§4.4): it seeds Maxr at 2·mrMean and,
// whenever training loss plateaus, decays it toward mrMin with the
// logarithmic schedule of Eq. 5–7:
//
//	Maxr(i) = 2·mrMean − α·log(i/β + 1)
//	α = mrMin² / mrMax,  β = B / α
//	Maxr clamped into [mrMin, mrMax]
//
// (Eq. 7 as printed swaps the clamp arguments; the evident intent — keep
// Maxr within the profiled range — is implemented.) Larger decay steps land
// early (small i) and shrink later, per the paper's schedule rationale.
type ABS struct {
	stats EnduranceStats
	alpha float64
	beta  float64

	// DecayPeriod is how often (in batches) the ABS checks for a plateau
	// (the paper sets 20). Convergence is considered halted when the mean
	// loss of the latest period fails to improve on the previous period's
	// — a windowed version of the paper's "training loss stops decreasing"
	// test that is robust to per-batch noise.
	DecayPeriod int

	batchIdx    int
	periodSum   float64
	periodCount int
	prevMean    float64
	curMaxr     int
}

// NewABS builds the sensor from profiling stats with the paper's defaults.
func NewABS(stats EnduranceStats) *ABS {
	a := &ABS{
		stats:       stats,
		DecayPeriod: 20,
		prevMean:    math.Inf(-1), // no previous period yet
	}
	a.alpha = stats.MrMin * stats.MrMin / stats.MrMax
	if a.alpha <= 0 {
		a.alpha = 1
	}
	b := float64(stats.NumBaseBatches)
	if b < 1 {
		b = 1
	}
	a.beta = b / a.alpha
	a.curMaxr = a.clamp(2 * stats.MrMean)
	return a
}

// Stats returns the profiling statistics the sensor was built from.
func (a *ABS) Stats() EnduranceStats { return a.stats }

// Maxr returns the current endurance limit.
func (a *ABS) Maxr() int { return a.curMaxr }

func (a *ABS) clamp(v float64) int {
	if v > a.stats.MrMax {
		v = a.stats.MrMax
	}
	if v < a.stats.MrMin {
		v = a.stats.MrMin
	}
	if v < 1 {
		v = 1
	}
	return int(math.Round(v))
}

// ObserveLoss ingests one batch's training loss and returns the (possibly
// decayed) Maxr plus whether it changed. Decay only triggers at
// DecayPeriod boundaries when the period's mean loss did not improve on the
// previous period's.
func (a *ABS) ObserveLoss(loss float64) (maxr int, changed bool) {
	a.batchIdx++
	a.periodSum += loss
	a.periodCount++
	if a.batchIdx%a.DecayPeriod != 0 {
		return a.curMaxr, false
	}
	mean := a.periodSum / float64(a.periodCount)
	prev := a.prevMean
	a.prevMean = mean
	a.periodSum, a.periodCount = 0, 0
	if math.IsInf(prev, -1) || mean < prev-1e-9 {
		return a.curMaxr, false // first period, or still improving
	}
	// Eq. 5 gives the (clamped) schedule target. The α of Eq. 6 makes this
	// deliberately subtle — on typical endurance statistics the log term
	// moves Maxr by only a few units across a whole training run, which
	// matches the paper's description ("subtly tune Maxr") and its ablation
	// (Cascade-TB keeps most of its batch growth throughout training).
	i := float64(a.batchIdx)
	next := a.clamp(2*a.stats.MrMean - a.alpha*math.Log(i/a.beta+1))
	if next < a.curMaxr {
		a.curMaxr = next
		return a.curMaxr, true
	}
	return a.curMaxr, false
}

// ResetEpoch clears the plateau tracker at an epoch boundary while keeping
// the decayed Maxr (the schedule index i keeps growing across epochs, so
// decay is monotone over training).
func (a *ABS) ResetEpoch() {
	a.periodSum, a.periodCount = 0, 0
	a.prevMean = math.Inf(-1)
}
