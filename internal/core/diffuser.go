package core

import (
	"math"

	"github.com/cascade-ml/cascade/internal/parallel"
)

// MaxEventIndex is the sentinel Algorithm 3 assigns to nodes whose relevant
// events are all processed: every remaining event is safe for them.
const MaxEventIndex = math.MaxInt

// TGDiffuser executes the training-time half of the Topology-Aware Graph
// Diffuser (§4.2, Algorithm 3): given per-node pointers into the dependency
// table and the Maximum Revisit Endurance Maxr, it finds, per batch, the
// last tolerable event — the earliest event at which some node would exceed
// Maxr relevant events — and advances the pointers once the batch is cut.
type TGDiffuser struct {
	table   *DependencyTable
	ptrs    []int   // per active node: position within its entry
	active  []int32 // nodes with non-empty entries in the current table
	maxr    int
	workers int
}

// NewTGDiffuser builds a diffuser over a dependency table. maxr must be ≥ 1
// (the ABS provides and later adapts it).
func NewTGDiffuser(table *DependencyTable, maxr, workers int) *TGDiffuser {
	d := &TGDiffuser{workers: workers}
	d.SetMaxr(maxr)
	d.SetTable(table)
	return d
}

// SetTable installs a (new chunk's) table and resets all event pointers to
// its start.
func (d *TGDiffuser) SetTable(t *DependencyTable) {
	d.table = t
	d.active = d.active[:0]
	for n, e := range t.Entries {
		if len(e) > 0 {
			d.active = append(d.active, int32(n))
		}
	}
	if cap(d.ptrs) < len(d.active) {
		d.ptrs = make([]int, len(d.active))
	}
	d.ptrs = d.ptrs[:len(d.active)]
	for i := range d.ptrs {
		d.ptrs[i] = 0
	}
}

// SetMaxr updates the Maximum Revisit Endurance (floored at 1 — a node must
// tolerate at least its own next event).
func (d *TGDiffuser) SetMaxr(maxr int) {
	if maxr < 1 {
		maxr = 1
	}
	d.maxr = maxr
}

// Maxr returns the current endurance limit.
func (d *TGDiffuser) Maxr() int { return d.maxr }

// LastTolerableEvent is Algorithm 3's parallel min-reduction: for each
// non-stable active node, the candidate boundary is the event at position
// ptr + Maxr of its entry — the first event at which the node would be
// involved beyond its endurance; the batch's last event (inclusive) is the
// minimum candidate. Nodes whose remaining entries all fit within Maxr
// contribute MaxEventIndex ("all remaining events in their entries can be
// processed safely"); stable nodes (SG-Filter) are skipped entirely, which
// is how temporal independence relaxes the boundary (§4.3, Fig. 8b).
//
// Note: Algorithm 3 as printed clamps the lookup position to len−1, but the
// worked examples of Figures 7(b) and 8(b) — node boundaries {1:8, 2:8,
// 7:9, 8:10, and the SG-Filter expansion from 8 to 10} — are only
// reproducible with the out-of-range ⇒ MAX_INT rule, which also matches the
// prose; we implement the figures' semantics. Each non-stable node is thus
// involved in at most Maxr+1 relevant events per batch (positions
// ptr … ptr+Maxr inclusive).
func (d *TGDiffuser) LastTolerableEvent(stable func(int32) bool) int {
	return parallel.MinIntReduce(len(d.active), d.workers, func(i int) int {
		n := d.active[i]
		if stable != nil && stable(n) {
			return MaxEventIndex
		}
		entry := d.table.Entries[n]
		perm := d.ptrs[i] + d.maxr
		if perm >= len(entry) {
			return MaxEventIndex
		}
		return int(entry[perm])
	})
}

// AdvancePointers consumes every relevant event with index < ed from every
// node's entry (the pointer-update loop closing Algorithm 3). It returns the
// maximum number of relevant events any single node absorbed in this batch —
// the batch's revisit depth. A depth beyond Maxr+1 means a non-dependency
// cut (floor/chunk/safety) pushed some node past its endurance; the
// scheduler surfaces that as the staleness metrics.
func (d *TGDiffuser) AdvancePointers(ed int) int {
	negMax := parallel.MinIntReduce(len(d.active), d.workers, func(i int) int {
		entry := d.table.Entries[d.active[i]]
		p := d.ptrs[i]
		for p < len(entry) && int(entry[p]) < ed {
			p++
		}
		adv := p - d.ptrs[i]
		d.ptrs[i] = p
		return -adv
	})
	if negMax > 0 { // no active nodes: MinIntReduce returned +MaxInt
		return 0
	}
	return -negMax
}

// ActiveNodes returns how many nodes have entries in the current table.
func (d *TGDiffuser) ActiveNodes() int { return len(d.active) }
