package core

import (
	"fmt"
	"sync"

	"github.com/cascade-ml/cascade/internal/graph"
)

// ChunkedTable implements the chunk-based table-building optimization for
// large-scale graphs (§4.2, evaluated as Cascade_EX in §5.5): the event
// sequence is split into fixed-size chunks, each chunk gets its own
// dependency table considering only within-chunk dependencies (the final
// event of a chunk bounds all dependencies), and — when pipelining is on —
// chunk k+1's table is built in the background while training runs on
// chunk k.
//
// Smaller per-chunk working sets keep the build cache-resident, and the
// build/train overlap hides most of the remaining preprocessing latency,
// the two effects §4.2 credits for Cascade_EX's gains.
type ChunkedTable struct {
	events    []graph.Event
	numNodes  int
	workers   int
	chunkSize int
	pipeline  bool

	chunks []*DependencyTable
	once   []sync.Once
}

// NewChunkedTable prepares a lazily built chunked table. chunkSize is in
// events (the paper uses one million on GDELT/MAG; scale yours with the
// dataset). pipeline enables background prefetch of the next chunk.
func NewChunkedTable(events []graph.Event, numNodes, workers, chunkSize int, pipeline bool) *ChunkedTable {
	if chunkSize <= 0 {
		panic(fmt.Sprintf("core: chunk size %d", chunkSize))
	}
	n := (len(events) + chunkSize - 1) / chunkSize
	if n == 0 {
		n = 1
	}
	return &ChunkedTable{
		events:    events,
		numNodes:  numNodes,
		workers:   workers,
		chunkSize: chunkSize,
		pipeline:  pipeline,
		chunks:    make([]*DependencyTable, n),
		once:      make([]sync.Once, n),
	}
}

// NumChunks returns the chunk count.
func (c *ChunkedTable) NumChunks() int { return len(c.chunks) }

// ChunkBounds returns chunk i's event range [lo, hi).
func (c *ChunkedTable) ChunkBounds(i int) (lo, hi int) {
	lo = i * c.chunkSize
	hi = lo + c.chunkSize
	if hi > len(c.events) {
		hi = len(c.events)
	}
	return lo, hi
}

// ChunkOf returns the chunk index containing event idx.
func (c *ChunkedTable) ChunkOf(idx int) int {
	i := idx / c.chunkSize
	if i >= len(c.chunks) {
		i = len(c.chunks) - 1
	}
	return i
}

// Get returns chunk i's table, building it on first use. With pipelining
// enabled, the call also kicks off chunk i+1's build in the background so it
// overlaps the caller's training on chunk i.
func (c *ChunkedTable) Get(i int) *DependencyTable {
	c.build(i)
	if c.pipeline && i+1 < len(c.chunks) {
		go c.build(i + 1)
	}
	return c.chunks[i]
}

func (c *ChunkedTable) build(i int) {
	c.once[i].Do(func() {
		lo, hi := c.ChunkBounds(i)
		c.chunks[i] = buildTableRange(c.events, c.numNodes, c.workers, lo, hi)
	})
}

// MemoryBytes sums the resident size of all chunks built so far.
func (c *ChunkedTable) MemoryBytes() int64 {
	var b int64
	for _, t := range c.chunks {
		if t != nil {
			b += t.MemoryBytes()
		}
	}
	return b
}
