package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/graph/datagen"
)

func profiledStats(t testing.TB, baseBatch int) (EnduranceStats, *DependencyTable) {
	t.Helper()
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 41, FeatDimOverride: 1, MinEvents: 3000})
	table := BuildDependencyTable(d.Events, d.NumNodes, 4)
	return ProfileMaxEndurance(table, d.Events, baseBatch, 50, 7), table
}

func TestProfileMaxEnduranceSane(t *testing.T) {
	stats, _ := profiledStats(t, 100)
	if stats.MrMin < 1 || stats.MrMean < stats.MrMin || stats.MrMax < stats.MrMean {
		t.Fatalf("ordering violated: %+v", stats)
	}
	if stats.NumBaseBatches <= 0 || stats.SampledBatches <= 0 {
		t.Fatalf("batch counts: %+v", stats)
	}
	if stats.SampledBatches > 50 {
		t.Fatalf("sampled %d > 50", stats.SampledBatches)
	}
	// With base batch 100 on a skewed graph, a hot node should be involved
	// in well over one event per batch.
	if stats.MrMax < 3 {
		t.Fatalf("MrMax %v implausibly low for a skewed stream", stats.MrMax)
	}
}

func TestProfileMaxEnduranceWorkedExample(t *testing.T) {
	// Figure 9's flavor: base batch 4 over the paper example. Batch 0
	// (events 0–3) touches node 1 four times plus its neighbor futures;
	// node 1's in-range relevant count is 4.
	events, n := paperExample()
	table := BuildDependencyTable(events, n, 1)
	stats := ProfileMaxEndurance(table, events, 4, 0, 1)
	if stats.NumBaseBatches != 3 {
		t.Fatalf("base batches %d, want 3", stats.NumBaseBatches)
	}
	// Batch [0,4): node 1 count 4. Batch [4,8): node a count 4.
	// Batch [8,12): node 1 count {8,9,10,11} = 4. Max endurance = 4 in all.
	if stats.MrMax != 4 || stats.MrMin != 4 || stats.MrMean != 4 {
		t.Fatalf("stats %+v, want all 4", stats)
	}
}

func TestABSInitialMaxr(t *testing.T) {
	a := NewABS(EnduranceStats{MrMax: 20, MrMean: 6, MrMin: 2, NumBaseBatches: 100})
	// 2·mean = 12 ≤ max → Maxr = 12.
	if a.Maxr() != 12 {
		t.Fatalf("initial Maxr %d, want 12", a.Maxr())
	}
	// 2·mean above max clamps to max.
	b := NewABS(EnduranceStats{MrMax: 8, MrMean: 6, MrMin: 2, NumBaseBatches: 100})
	if b.Maxr() != 8 {
		t.Fatalf("clamped Maxr %d, want 8", b.Maxr())
	}
}

func TestABSDecaysOnPlateau(t *testing.T) {
	// Stats where Eq. 5's α is large enough for visible decay:
	// α = 20²/40 = 10, β = 100/10 = 10.
	a := NewABS(EnduranceStats{MrMax: 40, MrMean: 25, MrMin: 20, NumBaseBatches: 100})
	start := a.Maxr()
	// Feed a flat loss: after DecayPeriod batches with ≥ PlateauWindow
	// non-improving ones, Maxr must decay.
	decayed := false
	for i := 0; i < 200; i++ {
		if _, changed := a.ObserveLoss(1.0); changed {
			decayed = true
		}
	}
	if !decayed {
		t.Fatal("no decay on a 200-batch plateau")
	}
	if a.Maxr() >= start {
		t.Fatalf("Maxr %d did not decrease from %d", a.Maxr(), start)
	}
	if float64(a.Maxr()) < 20 {
		t.Fatalf("Maxr %d fell below MrMin", a.Maxr())
	}
}

func TestABSHoldsWhileImproving(t *testing.T) {
	a := NewABS(EnduranceStats{MrMax: 40, MrMean: 25, MrMin: 20, NumBaseBatches: 100})
	start := a.Maxr()
	loss := 10.0
	for i := 0; i < 200; i++ {
		loss *= 0.99 // strictly improving
		if _, changed := a.ObserveLoss(loss); changed {
			t.Fatalf("decayed at batch %d despite improvement", i)
		}
	}
	if a.Maxr() != start {
		t.Fatal("Maxr moved while loss improved")
	}
}

// Property: the decay schedule is monotone non-increasing and always within
// [MrMin, MrMax], for arbitrary loss streams.
func TestABSDecayMonotoneAndClamped(t *testing.T) {
	f := func(losses []float64) bool {
		a := NewABS(EnduranceStats{MrMax: 25, MrMean: 9, MrMin: 3, NumBaseBatches: 40})
		prev := a.Maxr()
		for _, l := range losses {
			if math.IsNaN(l) || math.IsInf(l, 0) {
				l = 1
			}
			m, _ := a.ObserveLoss(l)
			if m > prev || float64(m) > 25 || float64(m) < 3 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestABSEq5Schedule(t *testing.T) {
	// Verify decayed values follow Eq. 5 exactly: clamp(2·mean − α·log(i/β+1))
	// with α = mrMin²/mrMax, β = B/α. These stats make α large enough for
	// the schedule to move (α = 10).
	stats := EnduranceStats{MrMax: 40, MrMean: 25, MrMin: 20, NumBaseBatches: 100}
	a := NewABS(stats)
	alpha := stats.MrMin * stats.MrMin / stats.MrMax
	beta := float64(stats.NumBaseBatches) / alpha
	triggers := 0
	for i := 0; i < 2000; i++ {
		m, changed := a.ObserveLoss(5.0)
		if changed {
			triggers++
			eq5 := 2*stats.MrMean - alpha*math.Log(float64(a.batchIdx)/beta+1)
			if eq5 > stats.MrMax {
				eq5 = stats.MrMax
			}
			if eq5 < stats.MrMin {
				eq5 = stats.MrMin
			}
			if int(math.Round(eq5)) != m {
				t.Fatalf("decay at batch %d = %d, Eq.5 gives %v", a.batchIdx, m, eq5)
			}
		}
	}
	if triggers == 0 {
		t.Fatal("no decay observed")
	}
	if a.Maxr() != int(stats.MrMin) {
		t.Fatalf("2000 flat batches should reach MrMin: Maxr %d", a.Maxr())
	}
}

func TestABSEpochResetKeepsMaxr(t *testing.T) {
	a := NewABS(EnduranceStats{MrMax: 30, MrMean: 10, MrMin: 2, NumBaseBatches: 10})
	for i := 0; i < 500; i++ {
		a.ObserveLoss(1.0)
	}
	decayed := a.Maxr()
	a.ResetEpoch()
	if a.Maxr() != decayed {
		t.Fatal("epoch reset reverted the decayed Maxr")
	}
}

func TestProfileEmptySequence(t *testing.T) {
	stats := ProfileMaxEndurance(&DependencyTable{Entries: make([][]int32, 3)}, nil, 10, 5, 1)
	if stats.MrMin < 1 {
		t.Fatalf("degenerate stats %+v", stats)
	}
	a := NewABS(stats)
	if a.Maxr() < 1 {
		t.Fatal("Maxr below 1")
	}
}
