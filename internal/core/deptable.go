// Package core implements the paper's contribution: the Cascade
// dependency-aware adaptive batching framework — the Topology-Aware Graph
// Diffuser (TG-Diffuser, §4.2), the Similarity-Aware Graph Filter
// (SG-Filter, §4.3) and the Adaptive Batch Sensor (ABS, §4.4), composed into
// a batching.Scheduler per Algorithm 1.
package core

import (
	"fmt"
	"sort"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/parallel"
)

// DependencyTable is the N-entry table of Algorithm 2: entry n lists, in
// ascending order without duplicates, the indices of every event that may
// affect node n or rely on it —
//
//  1. all events incident to n, and
//  2. for each incident event e = (n, q), all of q's incident events with
//     index greater than e's (the neighbor's *future* events; past events of
//     a neighbor cannot influence n before the connecting event exists).
//
// Only 1-hop neighbors are considered: updates propagate further only
// through intermediate updates, which the table already captures (§4.2).
type DependencyTable struct {
	// Entries[n] is node n's sorted unique relevant-event index list.
	Entries [][]int32
	// Lo and Hi bound the event-index range the table covers ([Lo, Hi));
	// a full-sequence table has Lo = 0, Hi = len(events).
	Lo, Hi int
}

// BuildDependencyTable runs Algorithm 2 over the whole event sequence,
// parallelized over nodes (the paper uses OpenMP; we fan goroutines over
// node shards).
func BuildDependencyTable(events []graph.Event, numNodes, workers int) *DependencyTable {
	return buildTableRange(events, numNodes, workers, 0, len(events))
}

// buildTableRange builds a table restricted to events [lo, hi): only
// within-range events appear in entries, and neighbor-future closure only
// sees within-range events. This is the primitive the chunk-based
// optimization (§4.2) composes.
func buildTableRange(events []graph.Event, numNodes, workers, lo, hi int) *DependencyTable {
	if lo < 0 || hi > len(events) || lo > hi {
		panic(fmt.Sprintf("core: table range [%d,%d) of %d events", lo, hi, len(events)))
	}
	// incident[n] = ascending indices of events touching n within [lo, hi).
	incident := make([][]int32, numNodes)
	for i := lo; i < hi; i++ {
		e := events[i]
		incident[e.Src] = append(incident[e.Src], int32(i))
		if e.Dst != e.Src {
			incident[e.Dst] = append(incident[e.Dst], int32(i))
		}
	}
	entries := make([][]int32, numNodes)
	parallel.For(numNodes, workers, func(n int) {
		own := incident[n]
		if len(own) == 0 {
			return
		}
		// Step 1: the node's own events. Step 2: each neighbor's future
		// events (suffix of the neighbor's incident list past the
		// connecting event).
		est := len(own)
		out := make([]int32, 0, est*2)
		out = append(out, own...)
		for _, idx := range own {
			e := events[idx]
			q := e.Dst
			if int32(n) == e.Dst {
				q = e.Src
			}
			qe := incident[q]
			// First neighbor event strictly after idx.
			p := sort.Search(len(qe), func(i int) bool { return qe[i] > idx })
			out = append(out, qe[p:]...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		// Dedupe in place.
		w := 0
		for i, v := range out {
			if i == 0 || v != out[w-1] {
				out[w] = v
				w++
			}
		}
		entries[n] = out[:w:w]
	})
	return &DependencyTable{Entries: entries, Lo: lo, Hi: hi}
}

// Entry returns node n's relevant-event list (nil for untouched nodes).
func (t *DependencyTable) Entry(n int32) []int32 { return t.Entries[n] }

// MemoryBytes reports the table's resident size (Fig. 13c's "DT" bar).
func (t *DependencyTable) MemoryBytes() int64 {
	var b int64
	for _, e := range t.Entries {
		b += int64(len(e)) * 4
	}
	b += int64(len(t.Entries)) * 24 // slice headers
	return b
}

// CountInRange returns |Entry(n) ∩ [st, ed)| via binary search — the
// per-node relevant-event count the ABS profiles (§4.4).
func (t *DependencyTable) CountInRange(n int32, st, ed int) int {
	e := t.Entries[n]
	lo := sort.Search(len(e), func(i int) bool { return int(e[i]) >= st })
	hi := sort.Search(len(e), func(i int) bool { return int(e[i]) >= ed })
	return hi - lo
}
