package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/graph"
)

func randomStream(seed int64, n, nodes int) []graph.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]graph.Event, n)
	t := 0.0
	for i := range events {
		t += rng.Float64()
		s := int32(rng.Intn(nodes))
		d := int32(rng.Intn(nodes))
		if d == s {
			d = (d + 1) % int32(nodes)
		}
		events[i] = graph.Event{Src: s, Dst: d, Time: t}
	}
	return events
}

// The core property: appending incrementally must equal rebuilding over the
// whole sequence.
func TestStreamingAppendEqualsRebuild(t *testing.T) {
	f := func(seed int64, prefixRaw, suffixRaw uint8) bool {
		prefix := int(prefixRaw)%120 + 5
		suffix := int(suffixRaw)%80 + 1
		const nodes = 18
		all := randomStream(seed, prefix+suffix, nodes)

		st := NewStreamingTable(all[:prefix], nodes, 2)
		if err := st.Append(all[prefix:]); err != nil {
			return false
		}
		want := BuildDependencyTable(all, nodes, 1)
		for n := 0; n < nodes; n++ {
			a, b := st.Table().Entries[n], want.Entries[n]
			if len(a) == 0 && len(b) == 0 {
				continue
			}
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return len(st.Events()) == len(all) && st.Table().Hi == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingAppendPaperExample(t *testing.T) {
	events, n := paperExample()
	// Build on the first 8 events, then stream the rest.
	st := NewStreamingTable(events[:8], n, 1)
	if err := st.Append(events[8:]); err != nil {
		t.Fatal(err)
	}
	want := BuildDependencyTable(events, n, 1)
	for node := int32(0); int(node) < n; node++ {
		a, b := st.Table().Entry(node), want.Entry(node)
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d: streamed %v, rebuilt %v", node, a, b)
		}
	}
}

func TestStreamingAppendMultipleRounds(t *testing.T) {
	const nodes = 15
	all := randomStream(9, 90, nodes)
	st := NewStreamingTable(all[:30], nodes, 1)
	for lo := 30; lo < 90; lo += 10 {
		if err := st.Append(all[lo : lo+10]); err != nil {
			t.Fatal(err)
		}
	}
	want := BuildDependencyTable(all, nodes, 1)
	for n := 0; n < nodes; n++ {
		a, b := st.Table().Entries[n], want.Entries[n]
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d after rounds: %v vs %v", n, a, b)
		}
	}
}

func TestStreamingAppendValidation(t *testing.T) {
	events, n := paperExample()
	st := NewStreamingTable(events, n, 1)
	if err := st.Append([]graph.Event{{Src: 0, Dst: 1, Time: -1}}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := st.Append([]graph.Event{{Src: 5, Dst: 5, Time: 99}}); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := st.Append([]graph.Event{{Src: 0, Dst: 99, Time: 99}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := st.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
}

func TestStreamingTableDrivesDiffuser(t *testing.T) {
	// A diffuser over a streamed table behaves like one over a rebuilt
	// table for the paper example.
	events, n := paperExample()
	st := NewStreamingTable(events[:6], n, 1)
	if err := st.Append(events[6:]); err != nil {
		t.Fatal(err)
	}
	d := NewTGDiffuser(st.Table(), 4, 1)
	if k := d.LastTolerableEvent(nil); k != 8 {
		t.Fatalf("streamed-table boundary = %d, want 8", k)
	}
}
