package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/cascade-ml/cascade/internal/batching"
)

// schedulerState is the gob payload for Scheduler's batching.Checkpointable
// implementation: the walk position plus every piece of adaptive state the
// ABS/SG-Filter/TG-Diffuser trio accumulates during training, so a resumed
// run cuts exactly the batches the interrupted run would have. Static
// configuration (Options, dependency tables, profiling stats) is rebuilt by
// NewScheduler and deliberately not serialized.
type schedulerState struct {
	Cursor     int
	CurChunk   int
	MaxrPinned bool

	// ABS plateau tracker (§4.4).
	ABSBatchIdx    int
	ABSPeriodSum   float64
	ABSPeriodCount int
	ABSPrevMean    float64
	ABSDecayPeriod int
	ABSMaxr        int

	// SG-Filter flags and epoch counters (§4.3).
	Flags         []bool
	Updates       int64
	StableUpdates int64

	// TG-Diffuser per-node pointers for the current chunk's table (§4.2).
	DiffuserMaxr int
	Ptrs         []int

	// Per-epoch traces (BatchSizes/MaxrTrace/StableCountTrace must match an
	// uninterrupted epoch's after resume).
	BatchSizes  []int
	MaxrTrace   []int
	StableTrace []int
}

var _ batching.Checkpointable = (*Scheduler)(nil)

// CheckpointState implements batching.Checkpointable.
func (s *Scheduler) CheckpointState() ([]byte, error) {
	st := schedulerState{
		Cursor:         s.cursor,
		CurChunk:       s.curChunk,
		MaxrPinned:     s.maxrPinned,
		ABSBatchIdx:    s.abs.batchIdx,
		ABSPeriodSum:   s.abs.periodSum,
		ABSPeriodCount: s.abs.periodCount,
		ABSPrevMean:    s.abs.prevMean,
		ABSDecayPeriod: s.abs.DecayPeriod,
		ABSMaxr:        s.abs.curMaxr,
		Flags:          append([]bool(nil), s.filter.flags...),
		Updates:        s.filter.updates,
		StableUpdates:  s.filter.stableUpdates,
		DiffuserMaxr:   s.diffuser.maxr,
		Ptrs:           append([]int(nil), s.diffuser.ptrs...),
		BatchSizes:     append([]int(nil), s.batchSizes...),
		MaxrTrace:      append([]int(nil), s.maxrTrace...),
		StableTrace:    append([]int(nil), s.stableTrace...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreCheckpointState implements batching.Checkpointable on a scheduler
// built with the same Options over the same event sequence.
func (s *Scheduler) RestoreCheckpointState(data []byte) error {
	var st schedulerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding scheduler checkpoint: %w", err)
	}
	if len(st.Flags) != len(s.filter.flags) {
		return fmt.Errorf("core: scheduler checkpoint has %d node flags, scheduler has %d", len(st.Flags), len(s.filter.flags))
	}
	// Reinstall the table the interrupted run was walking, which rebuilds the
	// active-node list, then overwrite the pointers into it.
	if s.chunked != nil {
		if st.CurChunk < 0 || st.CurChunk >= s.chunked.NumChunks() {
			return fmt.Errorf("core: scheduler checkpoint chunk %d out of range (%d chunks)", st.CurChunk, s.chunked.NumChunks())
		}
		s.curChunk = st.CurChunk
		s.diffuser.SetTable(s.chunked.Get(st.CurChunk))
	} else {
		s.diffuser.SetTable(s.full)
	}
	if len(st.Ptrs) != len(s.diffuser.ptrs) {
		return fmt.Errorf("core: scheduler checkpoint has %d diffuser pointers, table has %d active nodes", len(st.Ptrs), len(s.diffuser.ptrs))
	}
	copy(s.diffuser.ptrs, st.Ptrs)
	s.diffuser.SetMaxr(st.DiffuserMaxr)

	s.cursor = st.Cursor
	s.maxrPinned = st.MaxrPinned

	s.abs.batchIdx = st.ABSBatchIdx
	s.abs.periodSum = st.ABSPeriodSum
	s.abs.periodCount = st.ABSPeriodCount
	s.abs.prevMean = st.ABSPrevMean
	s.abs.DecayPeriod = st.ABSDecayPeriod
	s.abs.curMaxr = st.ABSMaxr

	copy(s.filter.flags, st.Flags)
	s.filter.updates = st.Updates
	s.filter.stableUpdates = st.StableUpdates

	s.batchSizes = append(s.batchSizes[:0], st.BatchSizes...)
	s.maxrTrace = append(s.maxrTrace[:0], st.MaxrTrace...)
	s.stableTrace = append(s.stableTrace[:0], st.StableTrace...)
	return nil
}
