package core

import (
	"fmt"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// SGFilter is the Similarity-Aware Graph Filter (§4.3): after every memory
// update it compares each touched node's memory before and after (cosine
// similarity) and flags the node stable when the similarity clears θsim.
// The TG-Diffuser skips stable nodes when reducing the batch boundary,
// breaking their temporal dependencies. Flags reset at every epoch start
// (Algorithm 1, line 10).
type SGFilter struct {
	theta float32
	flags []bool

	// Epoch counters behind Fig. 5's "ratio of stable node updates".
	updates       int64
	stableUpdates int64
}

// NewSGFilter builds a filter for numNodes nodes with similarity threshold
// theta (the paper default is 0.9, studied in Fig. 13a).
func NewSGFilter(numNodes int, theta float64) *SGFilter {
	if theta < -1 || theta > 1 {
		panic(fmt.Sprintf("core: similarity threshold %v outside [-1,1]", theta))
	}
	return &SGFilter{theta: float32(theta), flags: make([]bool, numNodes)}
}

// Reset clears all stable flags and epoch counters.
func (f *SGFilter) Reset() {
	for i := range f.flags {
		f.flags[i] = false
	}
	f.updates = 0
	f.stableUpdates = 0
}

// Update recomputes the stable flags for the nodes whose memories changed:
// pre/post row i holds node nodes[i]'s memory before/after the update.
// A node's flag follows its latest update — a stabilized node that starts
// moving again loses its flag (Fig. 8a, step 2).
func (f *SGFilter) Update(nodes []int32, pre, post *tensor.Matrix) {
	if len(nodes) == 0 {
		return
	}
	if pre.Rows != len(nodes) || post.Rows != len(nodes) {
		panic(fmt.Sprintf("core: SGFilter update %d nodes with %d/%d rows", len(nodes), pre.Rows, post.Rows))
	}
	sims := tensor.CosineSimilarityRows(pre, post)
	for i, n := range nodes {
		stable := sims[i] >= f.theta
		f.flags[n] = stable
		f.updates++
		if stable {
			f.stableUpdates++
		}
	}
}

// IsStable reports node n's current flag.
func (f *SGFilter) IsStable(n int32) bool { return f.flags[n] }

// StableFunc returns the predicate form used by the TG-Diffuser.
func (f *SGFilter) StableFunc() func(int32) bool {
	return func(n int32) bool { return f.flags[n] }
}

// StableUpdateRatio returns the fraction of memory updates this epoch whose
// pre/post similarity cleared θsim — the quantity Fig. 5 plots per epoch.
func (f *SGFilter) StableUpdateRatio() float64 {
	if f.updates == 0 {
		return 0
	}
	return float64(f.stableUpdates) / float64(f.updates)
}

// Updates returns how many memory updates the filter has inspected this
// epoch (the denominator of Fig. 5's ratio).
func (f *SGFilter) Updates() int64 { return f.updates }

// StableUpdates returns how many of this epoch's updates cleared θsim — the
// "keep" side of the filter's keep/drop accounting (dropped = Updates −
// StableUpdates).
func (f *SGFilter) StableUpdates() int64 { return f.stableUpdates }

// StableCount returns how many nodes are currently flagged stable.
func (f *SGFilter) StableCount() int {
	c := 0
	for _, s := range f.flags {
		if s {
			c++
		}
	}
	return c
}

// Theta returns the similarity threshold.
func (f *SGFilter) Theta() float64 { return float64(f.theta) }

// MemoryBytes reports the flag array's resident size (Fig. 13c's "SF" bar).
func (f *SGFilter) MemoryBytes() int64 { return int64(len(f.flags)) }
